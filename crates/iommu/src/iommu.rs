//! The IOMMU translation engine: IOTLB + page-structure caches + walker.
//!
//! Models the VT-d datapath of §2.1: a translation first consults the IOTLB;
//! on a miss, the page-table walker consults the three page-structure caches
//! (checked in parallel in hardware; the deepest hit determines how many of
//! the four page-table levels must actually be read from memory). In the
//! best case a walk costs a single memory read (the PT-L4 leaf entry), in
//! the worst case four.
//!
//! # Protection domains
//!
//! One hardware unit can translate for several devices, each attached to
//! its own *protection domain* (PASID-style). Every domain owns an
//! isolated IO page table, and every IOTLB/PTcache entry is tagged with
//! the domain it was filled for, so a cached translation can only ever
//! serve the domain whose walk produced it. Invalidation is domain-scoped:
//! wiping a range in domain 2 leaves domain 3's entries (even for the same
//! IOVAs) untouched — exactly the behaviour a per-device invalidation
//! descriptor has on real hardware, and exactly the behaviour the
//! `CrossDomainIsolation` oracle invariant audits. Domain 0's tags are the
//! identity, so a single-domain unit is bit-identical to the pre-domain
//! model.

use fns_iova::types::{Iova, IovaRange};
use fns_mem::addr::PhysAddr;

use crate::config::IommuConfig;
use crate::iotlb::{HugeTlbEntry, Iotlb, TlbEntry};
use crate::lru64::Lru64;
use crate::pagetable::{
    IoPageTable, PageRef, PtEntryView, PtError, ReclaimedPage, UnmapOutcome, WalkResult,
    L4_SPAN_PFNS,
};
use crate::stats::{DomainStats, IommuStats};

/// Tags a cache key with its protection domain. IOVAs are 48-bit, so every
/// key space (pfn and the three page-region keys) fits below bit 48 and the
/// domain can ride in the high bits. Domain 0 is the identity tag.
#[inline]
fn dk(d: u16, key: u64) -> u64 {
    key | (d as u64) << 48
}

/// What an invalidation request should wipe.
///
/// VT-d's page-selective IOTLB invalidation descriptor carries an
/// *invalidation hint* (IH) bit: with IH clear the paging-structure caches
/// covering the range are invalidated too (Linux default); with IH set they
/// are preserved (what F&S requests, §3).
///
/// The exact PWC-invalidation behaviour of real IOMMUs is not public. The
/// paper's measurements (§2.2) pin down an asymmetry this model encodes:
/// per-page Rx-path invalidations cost PTcache-L3 (leaf-level) entries but
/// leave the shared PTcache-L1/L2 entries intact most of the time (else the
/// measured L1/L2 miss rate would be ~1/page instead of 0.05), while Tx-path
/// invalidations do knock out the L1/L2 entries — the paper explicitly
/// correlates PTcache-L1/L2 misses one-to-one with the ACK (Tx) rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidationScope {
    /// Invalidate only the final IOVA translations (IH = 1). Safe whenever
    /// the unmap did not reclaim page-table pages.
    IotlbOnly,
    /// Invalidate the IOTLB plus leaf-level (PTcache-L3) entries overlapping
    /// the range; upper-level entries are wiped only when the range fully
    /// contains their span (the safety-relevant case).
    IotlbAndLeafPtcache,
    /// Invalidate the IOTLB and every covering PTcache-L1/L2/L3 entry.
    IotlbAndFullPtcache,
}

/// Result of one address translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Translation {
    /// Successful translation.
    Ok {
        /// The physical address the device will access.
        pa: PhysAddr,
        /// Memory reads performed by the walker (0 on an IOTLB hit).
        reads: u32,
        /// Whether the IOTLB satisfied the translation directly.
        iotlb_hit: bool,
    },
    /// No mapping exists (and no stale cached entry leaked one).
    Fault {
        /// Memory reads consumed before detecting the fault.
        reads: u32,
    },
}

impl Translation {
    /// Memory reads this translation cost.
    pub fn reads(&self) -> u32 {
        match *self {
            Translation::Ok { reads, .. } | Translation::Fault { reads } => reads,
        }
    }

    /// The translated address, if successful.
    pub fn pa(&self) -> Option<PhysAddr> {
        match *self {
            Translation::Ok { pa, .. } => Some(pa),
            Translation::Fault { .. } => None,
        }
    }

    /// Whether the IOTLB satisfied the translation directly (a fault
    /// necessarily missed).
    pub fn iotlb_hit(&self) -> bool {
        match *self {
            Translation::Ok { iotlb_hit, .. } => iotlb_hit,
            Translation::Fault { .. } => false,
        }
    }
}

/// The modelled IOMMU: per-domain page tables, a shared domain-tagged
/// IOTLB, and shared domain-tagged page-structure caches.
///
/// # Examples
///
/// ```
/// use fns_iommu::{Iommu, IommuConfig, InvalidationScope, Translation};
/// use fns_iova::types::{Iova, IovaRange};
/// use fns_mem::addr::PhysAddr;
///
/// let mut mmu = Iommu::new(IommuConfig::default());
/// let iova = Iova::from_pfn(0xABCDE);
/// mmu.map(iova, PhysAddr::from_pfn(42)).unwrap();
///
/// // First touch: IOTLB miss, full 4-read walk (caches cold).
/// assert!(matches!(mmu.translate(iova), Translation::Ok { reads: 4, iotlb_hit: false, .. }));
/// // Second touch: IOTLB hit.
/// assert!(matches!(mmu.translate(iova), Translation::Ok { reads: 0, iotlb_hit: true, .. }));
///
/// // Strict unmap: invalidate, then the device faults.
/// mmu.unmap_range(IovaRange::new(iova, 1)).unwrap();
/// mmu.invalidate_range(IovaRange::new(iova, 1), InvalidationScope::IotlbAndFullPtcache);
/// assert!(matches!(mmu.translate(iova), Translation::Fault { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct Iommu {
    /// One isolated IO page table per protection domain; index = domain ID.
    /// Single-domain configs hold exactly one, preserving the legacy shape.
    pts: Vec<IoPageTable>,
    iotlb: Iotlb,
    /// Huge-page IOTLB: key = domain-tagged 2 MB region (l4 page key),
    /// value = physical base of the region plus the PT-L3 ref it was read
    /// through.
    iotlb_huge: Lru64<HugeTlbEntry>,
    /// key: domain-tagged iova bits 39.. (512 GB) -> PT-L2 page.
    ptc_l1: Lru64<PageRef>,
    /// key: domain-tagged iova bits 30.. (1 GB) -> PT-L3 page.
    ptc_l2: Lru64<PageRef>,
    /// key: domain-tagged iova bits 21.. (2 MB) -> PT-L4 page.
    ptc_l3: Lru64<PageRef>,
    config: IommuConfig,
    stats: IommuStats,
    /// Per-domain counter slices (len = `config.domains`).
    dstats: Vec<DomainStats>,
}

impl Iommu {
    /// Creates an IOMMU with the given hardware configuration.
    pub fn new(config: IommuConfig) -> Self {
        let domains = config.domains.max(1) as usize;
        Self {
            pts: (0..domains).map(|_| IoPageTable::new()).collect(),
            iotlb: Iotlb::new(config.iotlb_entries, config.iotlb_assoc),
            iotlb_huge: Lru64::new(config.iotlb_huge_entries),
            ptc_l1: Lru64::new(config.ptcache_l1_entries),
            ptc_l2: Lru64::new(config.ptcache_l2_entries),
            ptc_l3: Lru64::new(config.ptcache_l3_entries),
            config,
            stats: IommuStats::default(),
            dstats: vec![DomainStats::default(); domains],
        }
    }

    /// Rewinds to the freshly-constructed state for `config`, reusing the
    /// page-table slabs and cache tables when the hardware shape is
    /// unchanged (the common case across a sweep) — the arena hook for
    /// back-to-back runs. Behaviorally identical to `Iommu::new(config)`.
    pub fn reset(&mut self, config: IommuConfig) {
        if config == self.config {
            for pt in &mut self.pts {
                pt.reset();
            }
            self.iotlb.clear();
            self.iotlb_huge.clear();
            self.ptc_l1.clear();
            self.ptc_l2.clear();
            self.ptc_l3.clear();
            self.stats = IommuStats::default();
            self.dstats.fill(DomainStats::default());
        } else {
            *self = Iommu::new(config);
        }
    }

    /// The hardware configuration.
    pub fn config(&self) -> IommuConfig {
        self.config
    }

    /// Number of protection domains this unit translates for.
    pub fn domains(&self) -> u16 {
        self.pts.len() as u16
    }

    /// Read access to domain 0's IO page table.
    pub fn page_table(&self) -> &IoPageTable {
        &self.pts[0]
    }

    /// Read access to `d`'s IO page table.
    pub fn page_table_in(&self, d: u16) -> &IoPageTable {
        &self.pts[d as usize]
    }

    /// Performance counters.
    pub fn stats(&self) -> IommuStats {
        self.stats
    }

    /// Per-domain counter slices (index = domain ID).
    pub fn domain_stats(&self) -> &[DomainStats] {
        &self.dstats
    }

    /// Whether any IOTLB entry (4 KB or huge) would serve `iova` issued by
    /// domain 0, without touching LRU recency state or counters.
    pub fn iotlb_contains(&self, iova: Iova) -> bool {
        self.iotlb_contains_in(0, iova)
    }

    /// Whether any IOTLB entry (4 KB or huge) would serve `iova` issued by
    /// domain `d`, without touching LRU recency state or counters. Audit
    /// tap for the safety oracle's invalidation cross-check; never used by
    /// the datapath.
    pub fn iotlb_contains_in(&self, d: u16, iova: Iova) -> bool {
        self.iotlb.contains(dk(d, iova.pfn()))
            || self.iotlb_huge.contains(dk(d, iova.l4_page_key()))
    }

    /// Maps `iova -> pa` in domain 0's IO page table.
    pub fn map(&mut self, iova: Iova, pa: PhysAddr) -> Result<(), PtError> {
        self.map_in(0, iova, pa)
    }

    /// Maps `iova -> pa` in domain `d`'s IO page table (driver-side
    /// operation; does not touch the hardware caches).
    pub fn map_in(&mut self, d: u16, iova: Iova, pa: PhysAddr) -> Result<(), PtError> {
        self.pts[d as usize].map(iova, pa)
    }

    /// Maps a 2 MB huge page in domain 0 (see [`Iommu::map_huge_in`]).
    pub fn map_huge(&mut self, iova: Iova, pa: PhysAddr) -> Result<(), PtError> {
        self.map_huge_in(0, iova, pa)
    }

    /// Maps a 2 MB huge page in domain `d` (see [`IoPageTable::map_huge`]),
    /// first collapsing any empty PT-L4 directory left in the slot by
    /// earlier 4 KB mappings — with the mandatory PTcache fixup for the
    /// reclaimed page.
    pub fn map_huge_in(&mut self, d: u16, iova: Iova, pa: PhysAddr) -> Result<(), PtError> {
        if let Some(reclaimed) = self.pts[d as usize].collapse_empty_l4(iova) {
            self.invalidate_for_reclaimed_in(d, &[reclaimed]);
        }
        self.pts[d as usize].map_huge(iova, pa)
    }

    /// Unmaps a 2 MB huge mapping from domain 0.
    pub fn unmap_huge(&mut self, iova: Iova) -> Result<(), PtError> {
        self.unmap_huge_in(0, iova)
    }

    /// Unmaps a 2 MB huge mapping from domain `d` (no cache invalidation —
    /// policy's job).
    pub fn unmap_huge_in(&mut self, d: u16, iova: Iova) -> Result<(), PtError> {
        self.pts[d as usize].unmap_huge(iova)
    }

    /// Unmaps `range` from domain 0 in a single operation.
    pub fn unmap_range(&mut self, range: IovaRange) -> Result<UnmapOutcome, PtError> {
        self.unmap_range_in(0, range)
    }

    /// Unmaps `range` from domain `d` in a single operation (Linux
    /// reclamation rule applies; see [`IoPageTable::unmap_range`]). Does
    /// *not* invalidate any caches — that is the protection policy's job,
    /// which is the whole point of the paper.
    pub fn unmap_range_in(&mut self, d: u16, range: IovaRange) -> Result<UnmapOutcome, PtError> {
        self.pts[d as usize].unmap_range(range)
    }

    /// Translates one domain-0 device access, surfacing a failed
    /// translation as a typed fault.
    pub fn translate_checked(
        &mut self,
        iova: Iova,
    ) -> Result<(PhysAddr, u32), crate::fault::IommuFault> {
        self.translate_checked_in(0, iova)
    }

    /// Translates one device access issued by domain `d`, surfacing a
    /// failed translation as a typed
    /// [`crate::fault::IommuFault::Translation`] (the DMAR-fault view of
    /// [`Iommu::translate_in`]).
    pub fn translate_checked_in(
        &mut self,
        d: u16,
        iova: Iova,
    ) -> Result<(PhysAddr, u32), crate::fault::IommuFault> {
        match self.translate_in(d, iova) {
            Translation::Ok { pa, reads, .. } => Ok((pa, reads)),
            Translation::Fault { reads } => {
                Err(crate::fault::IommuFault::Translation { iova, reads })
            }
        }
    }

    /// Translates one domain-0 device access.
    pub fn translate(&mut self, iova: Iova) -> Translation {
        self.translate_in(0, iova)
    }

    /// Translates one device access issued by domain `d`. This is the hot
    /// path: IOTLB, then the page-structure caches, then (partial)
    /// page-table walk — every lookup keyed by the issuing domain's tag.
    pub fn translate_in(&mut self, d: u16, iova: Iova) -> Translation {
        self.stats.translations += 1;
        let di = d as usize;
        self.dstats[di].translations += 1;
        let pfn = iova.pfn();
        if let Some(e) = self.iotlb.get(dk(d, pfn)) {
            self.stats.iotlb_hits += 1;
            self.dstats[di].iotlb_hits += 1;
            if self.config.verify_safety && !self.leaf_entry_current(di, e, iova) {
                // The device reached memory through a stale translation —
                // exactly what the strict safety property forbids.
                self.stats.stale_iotlb_hits += 1;
                self.dstats[di].stale_iotlb_hits += 1;
            }
            return Translation::Ok {
                pa: e.pa,
                reads: 0,
                iotlb_hit: true,
            };
        }
        if let Some(e) = self.iotlb_huge.get(dk(d, iova.l4_page_key())) {
            self.stats.iotlb_hits += 1;
            self.dstats[di].iotlb_hits += 1;
            let pa = e.base.add((iova.pfn() % L4_SPAN_PFNS) << 12);
            if self.config.verify_safety && !self.huge_entry_current(di, e, iova, pa) {
                self.stats.stale_iotlb_hits += 1;
                self.dstats[di].stale_iotlb_hits += 1;
            }
            return Translation::Ok {
                pa,
                reads: 0,
                iotlb_hit: true,
            };
        }
        self.stats.iotlb_misses += 1;
        let t = self.walk(d, iova);
        if matches!(t, Translation::Fault { .. }) {
            self.dstats[di].faults += 1;
        }
        t
    }

    /// Safety-monitor check for a 4 KB IOTLB hit: does the issuing domain's
    /// page table still agree with the cached translation? The entry
    /// carries the PT-L4 ref the walker read it from, so the common case is
    /// one generation check plus one leaf-slot read — equivalent to a full
    /// root walk, because a live ref is still attached at the same tree
    /// position (pages detach only when reclaimed, which bumps the slot
    /// generation). Only a stale ref (the page was reclaimed, and possibly
    /// a new PT-L4 page now serves the region) needs the full `lookup`.
    fn leaf_entry_current(&self, di: usize, e: TlbEntry, iova: Iova) -> bool {
        match self.pts[di].read_via(e.l4, iova) {
            Ok(Some(PtEntryView::Leaf(cur))) => cur == e.pa,
            Ok(_) => false,
            Err(_) => self.pts[di].lookup(iova) == Some(e.pa),
        }
    }

    /// Same check for a huge-page hit, through the cached PT-L3 ref. Any
    /// outcome other than a live huge leaf (the region was re-split into
    /// 4 KB mappings, unmapped, or the PT-L3 page reclaimed) falls back to
    /// the full lookup — those transitions are rare by construction.
    fn huge_entry_current(&self, di: usize, e: HugeTlbEntry, iova: Iova, pa: PhysAddr) -> bool {
        match self.pts[di].read_via(e.l3, iova) {
            Ok(Some(PtEntryView::HugeLeaf(cur))) => cur == e.base,
            _ => self.pts[di].lookup(iova) == Some(pa),
        }
    }

    /// Completes a huge-page walk: refill the huge IOTLB and return the
    /// 4 KB-granularity translation.
    fn finish_huge(
        &mut self,
        d: u16,
        iova: Iova,
        base: PhysAddr,
        l3: PageRef,
        reads: u32,
    ) -> Translation {
        self.iotlb_huge
            .insert(dk(d, iova.l4_page_key()), HugeTlbEntry { base, l3 });
        self.stats.memory_reads += reads as u64;
        Translation::Ok {
            pa: base.add((iova.pfn() % L4_SPAN_PFNS) << 12),
            reads,
            iotlb_hit: false,
        }
    }

    /// Page-table walk after an IOTLB miss, using the deepest live
    /// page-structure cache hit tagged for the issuing domain.
    fn walk(&mut self, d: u16, iova: Iova) -> Translation {
        let di = d as usize;
        // PTcache-L3: directly locates the PT-L4 leaf page (1 read).
        if let Some(l4) = self.ptc_l3.get(dk(d, iova.l4_page_key())) {
            match self.pts[di].read_via(l4, iova) {
                Ok(Some(PtEntryView::Leaf(pa))) => {
                    self.iotlb.insert(dk(d, iova.pfn()), TlbEntry { pa, l4 });
                    self.stats.memory_reads += 1;
                    return Translation::Ok {
                        pa,
                        reads: 1,
                        iotlb_hit: false,
                    };
                }
                Ok(Some(PtEntryView::Child(_))) | Ok(Some(PtEntryView::HugeLeaf(_))) => {
                    unreachable!("L4 page holds 4 KB leaves")
                }
                Ok(None) => {
                    self.stats.memory_reads += 1;
                    self.stats.faults += 1;
                    return Translation::Fault { reads: 1 };
                }
                Err(_) => {
                    // Use-after-free walk through a reclaimed PT-L4 page. On
                    // hardware this reads freed memory; we record the safety
                    // violation, drop the poisoned entry, and continue with
                    // a deeper lookup so the simulation stays deterministic.
                    self.stats.stale_ptcache_walks += 1;
                    self.ptc_l3.remove(dk(d, iova.l4_page_key()));
                }
            }
        }
        self.stats.ptcache_l3_misses += 1;
        // PTcache-L2: locates the PT-L3 page (2 reads: L3 entry + L4 entry).
        if let Some(l3) = self.ptc_l2.get(dk(d, iova.l3_page_key())) {
            match self.pts[di].read_via(l3, iova) {
                Ok(Some(PtEntryView::Child(l4))) => {
                    return self.finish_from_l4(d, iova, l4, 2);
                }
                Ok(Some(PtEntryView::HugeLeaf(base))) => {
                    return self.finish_huge(d, iova, base, l3, 1);
                }
                Ok(Some(PtEntryView::Leaf(_))) => unreachable!("L3 page holds children"),
                Ok(None) => {
                    self.stats.memory_reads += 1;
                    self.stats.faults += 1;
                    return Translation::Fault { reads: 1 };
                }
                Err(_) => {
                    self.stats.stale_ptcache_walks += 1;
                    self.ptc_l2.remove(dk(d, iova.l3_page_key()));
                }
            }
        }
        self.stats.ptcache_l2_misses += 1;
        // PTcache-L1: locates the PT-L2 page (3 reads).
        if let Some(l2) = self.ptc_l1.get(dk(d, iova.l2_page_key())) {
            match self.pts[di].read_via(l2, iova) {
                Ok(Some(PtEntryView::Child(l3))) => match self.pts[di].read_via(l3, iova) {
                    Ok(Some(PtEntryView::Child(l4))) => {
                        self.ptc_l2.insert(dk(d, iova.l3_page_key()), l3);
                        return self.finish_from_l4(d, iova, l4, 3);
                    }
                    Ok(Some(PtEntryView::HugeLeaf(base))) => {
                        self.ptc_l2.insert(dk(d, iova.l3_page_key()), l3);
                        return self.finish_huge(d, iova, base, l3, 2);
                    }
                    Ok(None) => {
                        self.stats.memory_reads += 2;
                        self.stats.faults += 1;
                        return Translation::Fault { reads: 2 };
                    }
                    _ => unreachable!("fresh child ref cannot be stale or a 4 KB leaf"),
                },
                Ok(Some(PtEntryView::Leaf(_))) | Ok(Some(PtEntryView::HugeLeaf(_))) => {
                    unreachable!("L2 page holds children")
                }
                Ok(None) => {
                    self.stats.memory_reads += 1;
                    self.stats.faults += 1;
                    return Translation::Fault { reads: 1 };
                }
                Err(_) => {
                    self.stats.stale_ptcache_walks += 1;
                    self.ptc_l1.remove(dk(d, iova.l2_page_key()));
                }
            }
        }
        self.stats.ptcache_l1_misses += 1;
        // Full walk from the root (4 reads for 4 KB pages, 3 for huge).
        match self.pts[di].walk(iova) {
            Some(WalkResult::Page(path)) => {
                self.ptc_l1.insert(dk(d, iova.l2_page_key()), path.l2);
                self.ptc_l2.insert(dk(d, iova.l3_page_key()), path.l3);
                self.ptc_l3.insert(dk(d, iova.l4_page_key()), path.l4);
                self.iotlb.insert(
                    dk(d, iova.pfn()),
                    TlbEntry {
                        pa: path.pa,
                        l4: path.l4,
                    },
                );
                self.stats.memory_reads += 4;
                Translation::Ok {
                    pa: path.pa,
                    reads: 4,
                    iotlb_hit: false,
                }
            }
            Some(WalkResult::Huge { l2, l3, pa_base }) => {
                self.ptc_l1.insert(dk(d, iova.l2_page_key()), l2);
                self.ptc_l2.insert(dk(d, iova.l3_page_key()), l3);
                self.finish_huge(d, iova, pa_base, l3, 3)
            }
            None => {
                // The walk reads entries until it finds the absent one; the
                // worst case (missing leaf) costs all 4 reads. We charge the
                // full walk for simplicity; faults are not on any hot path.
                self.stats.memory_reads += 4;
                self.stats.faults += 1;
                Translation::Fault { reads: 4 }
            }
        }
    }

    /// Completes a walk from a known-live PT-L4 ref, refilling PTcache-L3
    /// and the IOTLB under the issuing domain's tag.
    fn finish_from_l4(&mut self, d: u16, iova: Iova, l4: PageRef, reads: u32) -> Translation {
        match self.pts[d as usize].read_via(l4, iova) {
            Ok(Some(PtEntryView::Leaf(pa))) => {
                self.ptc_l3.insert(dk(d, iova.l4_page_key()), l4);
                self.iotlb.insert(dk(d, iova.pfn()), TlbEntry { pa, l4 });
                self.stats.memory_reads += reads as u64;
                Translation::Ok {
                    pa,
                    reads,
                    iotlb_hit: false,
                }
            }
            Ok(None) => {
                self.stats.memory_reads += reads as u64;
                self.stats.faults += 1;
                Translation::Fault { reads }
            }
            _ => unreachable!("fresh child ref cannot be stale or hold children"),
        }
    }

    /// Executes one invalidation over `range` in domain 0.
    pub fn invalidate_range(&mut self, range: IovaRange, scope: InvalidationScope) {
        self.invalidate_range_in(0, range, scope);
    }

    /// Executes one invalidation over `range` scoped to domain `d`: always
    /// removes the covered IOTLB entries carrying `d`'s tag, then wipes
    /// page-structure cache entries per `scope`. Other domains' entries —
    /// even for the same IOVAs — are untouched, as on real hardware where
    /// the invalidation descriptor names a single domain.
    pub fn invalidate_range_in(&mut self, d: u16, range: IovaRange, scope: InvalidationScope) {
        for iova in range.iter_pages() {
            if self.iotlb.remove(dk(d, iova.pfn())).is_some() {
                self.stats.iotlb_invalidations += 1;
            }
        }
        {
            let lo = range.base().l4_page_key();
            let hi = range.page(range.pages() - 1).l4_page_key();
            for key in lo..=hi {
                if self.iotlb_huge.remove(dk(d, key)).is_some() {
                    self.stats.iotlb_invalidations += 1;
                }
            }
        }
        match scope {
            InvalidationScope::IotlbOnly => {}
            InvalidationScope::IotlbAndLeafPtcache => self.invalidate_ptcache_leaf_in(d, range),
            InvalidationScope::IotlbAndFullPtcache => {
                self.invalidate_ptcache_leaf_in(d, range);
                self.invalidate_ptcache_upper_in(d, range);
            }
        }
    }

    /// Domain-0 wrapper for [`Iommu::invalidate_ptcache_leaf_in`].
    pub fn invalidate_ptcache_leaf(&mut self, range: IovaRange) {
        self.invalidate_ptcache_leaf_in(0, range);
    }

    /// Wipes leaf-level (PTcache-L3) entries of domain `d` overlapping
    /// `range`, plus any upper-level entry whose *entire span* lies inside
    /// the range (required for safety when a large unmap reclaims
    /// intermediate pages). Exposed separately so the datapath can model
    /// wipes retiring concurrently with ongoing walks.
    pub fn invalidate_ptcache_leaf_in(&mut self, d: u16, range: IovaRange) {
        let lo = range.base();
        let hi = range.page(range.pages() - 1);
        for key in lo.l4_page_key()..=hi.l4_page_key() {
            if self.ptc_l3.remove(dk(d, key)).is_some() {
                self.stats.ptcache_invalidations += 1;
            }
        }
        // Contained upper-level spans (1 GB / 512 GB) — only relevant for
        // very large unmaps.
        let pages = range.pages();
        if pages >= crate::pagetable::L3_SPAN_PFNS {
            let first = range.pfn_lo().div_ceil(crate::pagetable::L3_SPAN_PFNS);
            let mut region = first;
            while (region + 1) * crate::pagetable::L3_SPAN_PFNS - 1 <= range.pfn_hi() {
                if self.ptc_l2.remove(dk(d, region)).is_some() {
                    self.stats.ptcache_invalidations += 1;
                }
                region += 1;
            }
        }
        if pages >= crate::pagetable::L2_SPAN_PFNS {
            let first = range.pfn_lo().div_ceil(crate::pagetable::L2_SPAN_PFNS);
            let mut region = first;
            while (region + 1) * crate::pagetable::L2_SPAN_PFNS - 1 <= range.pfn_hi() {
                if self.ptc_l1.remove(dk(d, region)).is_some() {
                    self.stats.ptcache_invalidations += 1;
                }
                region += 1;
            }
        }
    }

    /// Domain-0 wrapper for [`Iommu::invalidate_ptcache_upper_in`].
    pub fn invalidate_ptcache_upper(&mut self, range: IovaRange) {
        self.invalidate_ptcache_upper_in(0, range);
    }

    /// Wipes the upper-level (PTcache-L1/L2) entries of domain `d` covering
    /// `range` — the collateral damage the paper attributes to Tx-path
    /// invalidations.
    pub fn invalidate_ptcache_upper_in(&mut self, d: u16, range: IovaRange) {
        let lo = range.base();
        let hi = range.page(range.pages() - 1);
        for key in lo.l3_page_key()..=hi.l3_page_key() {
            if self.ptc_l2.remove(dk(d, key)).is_some() {
                self.stats.ptcache_invalidations += 1;
            }
        }
        for key in lo.l2_page_key()..=hi.l2_page_key() {
            if self.ptc_l1.remove(dk(d, key)).is_some() {
                self.stats.ptcache_invalidations += 1;
            }
        }
    }

    /// Global flush: empties the IOTLB and all page-structure caches across
    /// *every* domain (the deferred/lazy mode's batched flush, and the
    /// nuclear option for domain teardown).
    pub fn invalidate_all(&mut self) {
        self.stats.iotlb_invalidations += (self.iotlb.len() + self.iotlb_huge.len()) as u64;
        self.iotlb_huge.clear();
        self.stats.ptcache_invalidations +=
            (self.ptc_l1.len() + self.ptc_l2.len() + self.ptc_l3.len()) as u64;
        self.iotlb.clear();
        self.ptc_l1.clear();
        self.ptc_l2.clear();
        self.ptc_l3.clear();
    }

    /// Domain-0 wrapper for [`Iommu::invalidate_for_reclaimed_in`].
    pub fn invalidate_for_reclaimed(&mut self, reclaimed: &[ReclaimedPage]) {
        self.invalidate_for_reclaimed_in(0, reclaimed);
    }

    /// Invalidates exactly the PTcache entries of domain `d` made stale by
    /// reclaimed page-table pages — the F&S rule that keeps PTcache
    /// preservation safe in the rare reclamation case (§3).
    pub fn invalidate_for_reclaimed_in(&mut self, d: u16, reclaimed: &[ReclaimedPage]) {
        for r in reclaimed {
            let removed = match r.level {
                4 => self.ptc_l3.remove(dk(d, r.region_key)).is_some(),
                3 => self.ptc_l2.remove(dk(d, r.region_key)).is_some(),
                2 => self.ptc_l1.remove(dk(d, r.region_key)).is_some(),
                _ => unreachable!("root is never reclaimed"),
            };
            if removed {
                self.stats.ptcache_invalidations += 1;
            }
        }
    }

    /// Records that `n` invalidation-queue entries were consumed (cost
    /// accounting lives in [`crate::invalidation`]).
    pub fn note_queue_entries(&mut self, n: u64) {
        self.stats.invalidation_queue_entries += n;
    }

    /// Serializes the full IOMMU state for checkpointing: page tables
    /// (physically — cached [`PageRef`]s must keep resolving identically),
    /// both IOTLB arrays and the three PTcaches (logically, in recency
    /// order), the hardware config, and counters (global + per-domain).
    pub fn snap(&self, w: &mut fns_snap::SnapWriter) {
        let pref = |w: &mut fns_snap::SnapWriter, v: &PageRef| {
            let (idx, generation) = v.parts();
            w.u32(idx);
            w.u32(generation);
        };
        self.pts[0].snap(w);
        self.iotlb.snap(w);
        let huge = |w: &mut fns_snap::SnapWriter, v: &HugeTlbEntry| {
            w.u64(v.base.as_u64());
            let (idx, generation) = v.l3.parts();
            w.u32(idx);
            w.u32(generation);
        };
        self.iotlb_huge.snap_with(w, huge);
        self.ptc_l1.snap_with(w, pref);
        self.ptc_l2.snap_with(w, pref);
        self.ptc_l3.snap_with(w, pref);
        w.usize(self.config.iotlb_entries);
        w.usize(self.config.iotlb_huge_entries);
        w.usize(self.config.ptcache_l1_entries);
        w.usize(self.config.ptcache_l2_entries);
        w.usize(self.config.ptcache_l3_entries);
        w.opt(&self.config.iotlb_assoc, |w, v| w.usize(*v));
        w.bool(self.config.verify_safety);
        w.u64(self.config.domain as u64);
        let s = &self.stats;
        for v in [
            s.translations,
            s.iotlb_hits,
            s.iotlb_misses,
            s.ptcache_l3_misses,
            s.ptcache_l2_misses,
            s.ptcache_l1_misses,
            s.memory_reads,
            s.faults,
            s.stale_iotlb_hits,
            s.stale_ptcache_walks,
            s.iotlb_invalidations,
            s.ptcache_invalidations,
            s.invalidation_queue_entries,
        ] {
            w.u64(v);
        }
        // Multi-domain extension rides after the legacy layout: domain
        // count, then the page tables and counter slices of domains 1..N.
        w.u64(self.pts.len() as u64);
        for pt in &self.pts[1..] {
            pt.snap(w);
        }
        for ds in &self.dstats {
            ds.snap(w);
        }
    }

    /// Rebuilds an IOMMU captured by [`Iommu::snap`].
    pub fn unsnap(r: &mut fns_snap::SnapReader) -> Result<Self, fns_snap::SnapError> {
        let pref = |r: &mut fns_snap::SnapReader| {
            let idx = r.u32()?;
            let generation = r.u32()?;
            Ok(PageRef::from_parts(idx, generation))
        };
        let pt0 = IoPageTable::unsnap(r)?;
        let iotlb = Iotlb::unsnap(r)?;
        let huge = |r: &mut fns_snap::SnapReader| {
            let base = PhysAddr::new(r.u64()?);
            let idx = r.u32()?;
            let generation = r.u32()?;
            Ok(HugeTlbEntry {
                base,
                l3: PageRef::from_parts(idx, generation),
            })
        };
        let iotlb_huge = Lru64::unsnap_with(r, huge)?;
        let ptc_l1 = Lru64::unsnap_with(r, pref)?;
        let ptc_l2 = Lru64::unsnap_with(r, pref)?;
        let ptc_l3 = Lru64::unsnap_with(r, pref)?;
        let iotlb_entries = r.usize()?;
        let iotlb_huge_entries = r.usize()?;
        let ptcache_l1_entries = r.usize()?;
        let ptcache_l2_entries = r.usize()?;
        let ptcache_l3_entries = r.usize()?;
        let iotlb_assoc = r.opt(|r| r.usize())?;
        let verify_safety = r.bool()?;
        let domain = r.u64()? as u16;
        let stats = IommuStats {
            translations: r.u64()?,
            iotlb_hits: r.u64()?,
            iotlb_misses: r.u64()?,
            ptcache_l3_misses: r.u64()?,
            ptcache_l2_misses: r.u64()?,
            ptcache_l1_misses: r.u64()?,
            memory_reads: r.u64()?,
            faults: r.u64()?,
            stale_iotlb_hits: r.u64()?,
            stale_ptcache_walks: r.u64()?,
            iotlb_invalidations: r.u64()?,
            ptcache_invalidations: r.u64()?,
            invalidation_queue_entries: r.u64()?,
        };
        let domains = r.u64()? as usize;
        let mut pts = Vec::with_capacity(domains);
        pts.push(pt0);
        for _ in 1..domains {
            pts.push(IoPageTable::unsnap(r)?);
        }
        let mut dstats = Vec::with_capacity(domains);
        for _ in 0..domains {
            dstats.push(DomainStats::unsnap(r)?);
        }
        let config = IommuConfig {
            iotlb_entries,
            iotlb_huge_entries,
            ptcache_l1_entries,
            ptcache_l2_entries,
            ptcache_l3_entries,
            iotlb_assoc,
            verify_safety,
            domain,
            domains: domains as u16,
        };
        Ok(Self {
            pts,
            iotlb,
            iotlb_huge,
            ptc_l1,
            ptc_l2,
            ptc_l3,
            config,
            stats,
            dstats,
        })
    }

    /// Protection-domain ID this unit serves (registry/tenant key).
    pub fn domain_id(&self) -> u16 {
        self.config.domain
    }

    /// Current IOTLB occupancy (test/inspection helper).
    pub fn iotlb_len(&self) -> usize {
        self.iotlb.len()
    }

    /// Current PTcache occupancies `(l1, l2, l3)` (test/inspection helper).
    pub fn ptcache_lens(&self) -> (usize, usize, usize) {
        (self.ptc_l1.len(), self.ptc_l2.len(), self.ptc_l3.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mmu() -> Iommu {
        Iommu::new(IommuConfig::default())
    }

    fn iova(pfn: u64) -> Iova {
        Iova::from_pfn(pfn)
    }

    fn pa(pfn: u64) -> PhysAddr {
        PhysAddr::from_pfn(pfn)
    }

    #[test]
    fn walk_read_counts_by_cache_depth() {
        let mut m = mmu();
        // Map two IOVAs in the same 2 MB region and one in a different
        // region of the same 1 GB.
        m.map(iova(0x1000), pa(1)).unwrap();
        m.map(iova(0x1001), pa(2)).unwrap();
        m.map(iova(0x1000 + 512), pa(3)).unwrap();

        // Cold: 4 reads.
        assert!(matches!(
            m.translate(iova(0x1000)),
            Translation::Ok { reads: 4, .. }
        ));
        // Same 2 MB region, different page: PTcache-L3 hit, 1 read.
        assert!(matches!(
            m.translate(iova(0x1001)),
            Translation::Ok { reads: 1, .. }
        ));
        // Different 2 MB region, same 1 GB: PTcache-L2 hit, 2 reads.
        assert!(matches!(
            m.translate(iova(0x1000 + 512)),
            Translation::Ok { reads: 2, .. }
        ));
        let s = m.stats();
        assert_eq!(s.iotlb_misses, 3);
        assert_eq!(s.ptcache_l3_misses, 2);
        assert_eq!(s.ptcache_l2_misses, 1);
        assert_eq!(s.ptcache_l1_misses, 1);
        assert_eq!(s.memory_reads, 7);
    }

    #[test]
    fn ptcache_l1_hit_costs_three_reads() {
        let mut m = mmu();
        m.map(iova(0), pa(1)).unwrap();
        // Same 512 GB region, different 1 GB region.
        let far = crate::pagetable::L3_SPAN_PFNS;
        m.map(iova(far), pa(2)).unwrap();
        m.translate(iova(0));
        assert!(matches!(
            m.translate(iova(far)),
            Translation::Ok { reads: 3, .. }
        ));
    }

    #[test]
    fn strict_invalidation_blocks_device() {
        let mut m = mmu();
        let i = iova(0x42);
        m.map(i, pa(9)).unwrap();
        m.translate(i);
        m.unmap_range(IovaRange::new(i, 1)).unwrap();
        m.invalidate_range(IovaRange::new(i, 1), InvalidationScope::IotlbAndFullPtcache);
        assert!(matches!(m.translate(i), Translation::Fault { .. }));
        assert_eq!(m.stats().stale_iotlb_hits, 0);
    }

    #[test]
    fn skipping_invalidation_leaks_stale_translation() {
        // The deferred-mode hazard: unmap without invalidating and the
        // device still reaches the old physical page.
        let mut m = mmu();
        let i = iova(0x99);
        m.map(i, pa(7)).unwrap();
        m.translate(i);
        m.unmap_range(IovaRange::new(i, 1)).unwrap();
        let t = m.translate(i);
        assert_eq!(t.pa(), Some(pa(7)), "stale IOTLB entry still serves");
        assert_eq!(m.stats().stale_iotlb_hits, 1);
    }

    #[test]
    fn iotlb_only_invalidation_preserves_ptcaches() {
        let mut m = mmu();
        m.map(iova(0x2000), pa(1)).unwrap();
        m.map(iova(0x2001), pa(2)).unwrap();
        m.translate(iova(0x2000)); // fills caches
        m.unmap_range(IovaRange::new(iova(0x2000), 1)).unwrap();
        m.invalidate_range(
            IovaRange::new(iova(0x2000), 1),
            InvalidationScope::IotlbOnly,
        );
        // The neighbouring page now walks with a PTcache-L3 hit: 1 read.
        assert!(matches!(
            m.translate(iova(0x2001)),
            Translation::Ok { reads: 1, .. }
        ));
        // And the unmapped page faults — safety is intact.
        assert!(matches!(
            m.translate(iova(0x2000)),
            Translation::Fault { .. }
        ));
    }

    #[test]
    fn full_invalidation_wipes_ptcaches() {
        let mut m = mmu();
        m.map(iova(0x3000), pa(1)).unwrap();
        m.map(iova(0x3001), pa(2)).unwrap();
        m.translate(iova(0x3000));
        m.unmap_range(IovaRange::new(iova(0x3000), 1)).unwrap();
        m.invalidate_range(
            IovaRange::new(iova(0x3000), 1),
            InvalidationScope::IotlbAndFullPtcache,
        );
        // Linux behaviour: the neighbour's covering entries are gone too —
        // full 4-read walk.
        assert!(matches!(
            m.translate(iova(0x3001)),
            Translation::Ok { reads: 4, .. }
        ));
    }

    #[test]
    fn reclaim_plus_preserve_without_fixup_is_detected() {
        // Adversarial scenario: preserve PTcaches across an unmap that
        // reclaims a PT-L4 page, *without* the F&S reclamation fixup. The
        // next walk through the stale entry must be flagged.
        let mut m = mmu();
        let base = 512 * 100;
        for k in 0..512u64 {
            m.map(iova(base + k), pa(k + 1)).unwrap();
        }
        m.translate(iova(base)); // PTcache-L3 now points at the L4 page
        let out = m.unmap_range(IovaRange::new(iova(base), 512)).unwrap();
        assert_eq!(out.reclaimed.len(), 1);
        m.invalidate_range(
            IovaRange::new(iova(base), 512),
            InvalidationScope::IotlbOnly,
        );
        // Remap one page of the region so a translation occurs again.
        m.map(iova(base), pa(999)).unwrap();
        let t = m.translate(iova(base));
        assert_eq!(t.pa(), Some(pa(999)), "model recovers deterministically");
        assert_eq!(m.stats().stale_ptcache_walks, 1, "violation recorded");
    }

    #[test]
    fn fns_reclaim_fixup_prevents_stale_walks() {
        let mut m = mmu();
        let base = 512 * 200;
        for k in 0..512u64 {
            m.map(iova(base + k), pa(k + 1)).unwrap();
        }
        m.translate(iova(base));
        let out = m.unmap_range(IovaRange::new(iova(base), 512)).unwrap();
        m.invalidate_range(
            IovaRange::new(iova(base), 512),
            InvalidationScope::IotlbOnly,
        );
        m.invalidate_for_reclaimed(&out.reclaimed);
        m.map(iova(base), pa(999)).unwrap();
        let t = m.translate(iova(base));
        assert_eq!(t.pa(), Some(pa(999)));
        assert_eq!(m.stats().stale_ptcache_walks, 0);
    }

    #[test]
    fn iotlb_capacity_evicts() {
        let cfg = IommuConfig {
            iotlb_entries: 4,
            ..Default::default()
        };
        let mut m = Iommu::new(cfg);
        for k in 0..5u64 {
            m.map(iova(0x5000 + k), pa(k + 1)).unwrap();
            m.translate(iova(0x5000 + k));
        }
        // First entry was evicted: translating it again misses the IOTLB
        // but hits PTcache-L3 (1 read).
        assert!(matches!(
            m.translate(iova(0x5000)),
            Translation::Ok {
                reads: 1,
                iotlb_hit: false,
                ..
            }
        ));
        assert_eq!(m.iotlb_len(), 4);
    }

    #[test]
    fn fault_on_never_mapped() {
        let mut m = mmu();
        assert!(matches!(
            m.translate(iova(0x7777)),
            Translation::Fault { .. }
        ));
        assert_eq!(m.stats().faults, 1);
    }

    #[test]
    fn translation_helpers() {
        let t = Translation::Ok {
            pa: pa(3),
            reads: 2,
            iotlb_hit: false,
        };
        assert_eq!(t.reads(), 2);
        assert_eq!(t.pa(), Some(pa(3)));
        assert_eq!(Translation::Fault { reads: 4 }.pa(), None);
    }

    fn mmu_domains(n: u16) -> Iommu {
        Iommu::new(IommuConfig {
            domains: n,
            ..Default::default()
        })
    }

    #[test]
    fn domains_have_isolated_page_tables() {
        let mut m = mmu_domains(2);
        let i = iova(0x4242);
        m.map_in(0, i, pa(10)).unwrap();
        m.map_in(1, i, pa(20)).unwrap();
        assert_eq!(m.translate_in(0, i).pa(), Some(pa(10)));
        assert_eq!(m.translate_in(1, i).pa(), Some(pa(20)));
        // The IOTLB now holds both tagged entries; each keeps serving its
        // own domain's physical page.
        assert_eq!(m.translate_in(0, i).pa(), Some(pa(10)));
        assert_eq!(m.translate_in(1, i).pa(), Some(pa(20)));
        assert_eq!(m.domain_stats()[0].translations, 2);
        assert_eq!(m.domain_stats()[1].translations, 2);
    }

    #[test]
    fn cached_entries_never_cross_domains() {
        let mut m = mmu_domains(2);
        let i = iova(0x6000);
        m.map_in(0, i, pa(33)).unwrap();
        m.translate_in(0, i); // fills domain 0's tagged IOTLB/PTcache entries
        assert!(m.iotlb_contains_in(0, i));
        assert!(!m.iotlb_contains_in(1, i));
        // Domain 1 never mapped this IOVA: it must fault, not ride domain
        // 0's cached walk.
        assert!(matches!(m.translate_in(1, i), Translation::Fault { .. }));
        assert_eq!(m.domain_stats()[1].faults, 1);
        assert_eq!(m.domain_stats()[0].faults, 0);
    }

    #[test]
    fn invalidation_is_domain_scoped() {
        let mut m = mmu_domains(3);
        let i = iova(0x8000);
        for d in 0..3u16 {
            m.map_in(d, i, pa(100 + d as u64)).unwrap();
            m.translate_in(d, i);
        }
        // Scoped invalidation of domain 1 leaves 0 and 2 cached.
        m.unmap_range_in(1, IovaRange::new(i, 1)).unwrap();
        m.invalidate_range_in(
            1,
            IovaRange::new(i, 1),
            InvalidationScope::IotlbAndFullPtcache,
        );
        assert!(m.iotlb_contains_in(0, i));
        assert!(!m.iotlb_contains_in(1, i));
        assert!(m.iotlb_contains_in(2, i));
        assert!(matches!(m.translate_in(1, i), Translation::Fault { .. }));
        assert_eq!(m.translate_in(0, i).pa(), Some(pa(100)));
        assert_eq!(m.translate_in(2, i).pa(), Some(pa(102)));
        assert_eq!(m.stats().stale_iotlb_hits, 0);
    }

    #[test]
    fn skipping_scoped_invalidation_leaks_only_in_that_domain() {
        let mut m = mmu_domains(2);
        let i = iova(0x9000);
        m.map_in(0, i, pa(7)).unwrap();
        m.map_in(1, i, pa(8)).unwrap();
        m.translate_in(0, i);
        m.translate_in(1, i);
        // Domain 1 unmaps but skips its invalidation: only *its* stale
        // entry leaks; domain 0's translation stays legitimately valid.
        m.unmap_range_in(1, IovaRange::new(i, 1)).unwrap();
        let t = m.translate_in(1, i);
        assert_eq!(t.pa(), Some(pa(8)), "stale tagged entry still serves");
        assert_eq!(m.domain_stats()[1].stale_iotlb_hits, 1);
        assert_eq!(m.domain_stats()[0].stale_iotlb_hits, 0);
        assert_eq!(m.translate_in(0, i).pa(), Some(pa(7)));
    }

    #[test]
    fn invalidate_all_flushes_every_domain() {
        let mut m = mmu_domains(2);
        let i = iova(0xA000);
        m.map_in(0, i, pa(1)).unwrap();
        m.map_in(1, i, pa(2)).unwrap();
        m.translate_in(0, i);
        m.translate_in(1, i);
        m.invalidate_all();
        assert!(!m.iotlb_contains_in(0, i));
        assert!(!m.iotlb_contains_in(1, i));
        assert_eq!(m.iotlb_len(), 0);
    }

    #[test]
    fn multi_domain_state_snapshots_round_trip() {
        let mut m = mmu_domains(2);
        let i = iova(0xB000);
        m.map_in(0, i, pa(5)).unwrap();
        m.map_in(1, i, pa(6)).unwrap();
        m.translate_in(0, i);
        m.translate_in(1, i);
        let mut w = fns_snap::SnapWriter::new();
        m.snap(&mut w);
        let bytes = w.finish();
        let mut r = fns_snap::SnapReader::new(&bytes).unwrap();
        let mut back = Iommu::unsnap(&mut r).unwrap();
        assert_eq!(back.domains(), 2);
        assert_eq!(back.domain_stats(), m.domain_stats());
        // Restored tagged entries still translate per-domain.
        assert_eq!(back.translate_in(0, i).pa(), Some(pa(5)));
        assert_eq!(back.translate_in(1, i).pa(), Some(pa(6)));
    }
}
