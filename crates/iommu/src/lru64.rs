//! A specialized O(1) LRU cache for packed `u64` keys.
//!
//! Drop-in hot-path replacement for [`crate::lru::LruCache`] in the IOTLB
//! and PTcache roles, where every key is a pfn or region key that already
//! fits in a `u64`. Three things make it faster than the generic cache:
//!
//! * **Open-addressed index** — a power-of-two table of arena indices with
//!   linear probing and backward-shift deletion, instead of a `HashMap`
//!   (no SipHash, no per-entry heap boxes, no tombstone buildup).
//! * **Multiplicative hashing** — one 64-bit multiply and a shift per
//!   lookup (Fibonacci hashing), which is enough because pfn/region keys
//!   are already well distributed in their low bits.
//! * **Copy values, reusable arena** — values are `Copy` (`PhysAddr`,
//!   `PageRef`), so nodes carry them inline with no `Option` dance and no
//!   key cloning on insert or touch; evicted slots recycle through a free
//!   list so steady-state insert/evict churn performs zero allocations.
//!
//! Eviction order is exactly the generic cache's LRU order for the same
//! operation sequence (asserted by `tests/lru_equivalence.rs`), so swapping
//! it into the IOMMU changes no simulated counter.

const NIL: u32 = u32::MAX;
/// Empty marker in the open-addressed table.
const EMPTY: u32 = u32::MAX;
/// Fibonacci hashing constant: 2^64 / phi, odd.
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

#[derive(Debug, Clone, Copy)]
struct Node<V> {
    key: u64,
    value: V,
    prev: u32,
    next: u32,
}

/// A fixed-capacity least-recently-used cache over `u64` keys.
///
/// # Examples
///
/// ```
/// use fns_iommu::lru64::Lru64;
///
/// let mut c = Lru64::new(2);
/// c.insert(1, "a");
/// c.insert(2, "b");
/// c.get(1); // touch 1 so 2 becomes the LRU victim
/// c.insert(3, "c");
/// assert!(c.get(2).is_none());
/// assert_eq!(c.get(1), Some("a"));
/// assert_eq!(c.get(3), Some("c"));
/// ```
#[derive(Debug, Clone)]
pub struct Lru64<V: Copy> {
    /// Open-addressed table of arena indices (EMPTY = vacant). Sized to at
    /// least 2x capacity, so the load factor never exceeds 0.5.
    table: Vec<u32>,
    /// `table.len() - 1`; table length is a power of two.
    mask: usize,
    /// Bits to shift the multiplied hash down to a table index.
    shift: u32,
    arena: Vec<Node<V>>,
    free: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    len: usize,
    capacity: usize,
}

impl<V: Copy> Lru64<V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity LRU");
        let table_len = (capacity * 2).max(8).next_power_of_two();
        Self {
            table: vec![EMPTY; table_len],
            mask: table_len - 1,
            shift: 64 - table_len.trailing_zeros(),
            arena: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
            capacity,
        }
    }

    /// Number of entries currently cached.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    #[inline]
    fn home_slot(&self, key: u64) -> usize {
        (key.wrapping_mul(HASH_MUL) >> self.shift) as usize
    }

    /// Finds the table slot holding `key`, if present.
    #[inline]
    fn find_slot(&self, key: u64) -> Option<usize> {
        // Fast-out for empty caches: probing the table would touch a cold
        // random slot. The huge-page IOTLB in a 4 KB-only workload (and
        // every cache under IOMMU-off) stays permanently empty yet is
        // probed on every invalidation.
        if self.len == 0 {
            return None;
        }
        let mut slot = self.home_slot(key);
        loop {
            let idx = self.table[slot];
            if idx == EMPTY {
                return None;
            }
            if self.arena[idx as usize].key == key {
                return Some(slot);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Inserts `arena_idx` into the table at the first vacant probe slot.
    #[inline]
    fn table_insert(&mut self, key: u64, arena_idx: u32) {
        let mut slot = self.home_slot(key);
        while self.table[slot] != EMPTY {
            slot = (slot + 1) & self.mask;
        }
        self.table[slot] = arena_idx;
    }

    /// Deletes the entry at `slot` with backward-shift compaction, keeping
    /// every remaining probe chain contiguous (no tombstones).
    fn table_delete(&mut self, mut slot: usize) {
        let mut j = slot;
        loop {
            j = (j + 1) & self.mask;
            let idx = self.table[j];
            if idx == EMPTY {
                break;
            }
            let home = self.home_slot(self.arena[idx as usize].key);
            // The entry at `j` may slide back into the hole at `slot` only
            // if its home position is cyclically outside (slot, j].
            if (j.wrapping_sub(home) & self.mask) >= (j.wrapping_sub(slot) & self.mask) {
                self.table[slot] = idx;
                slot = j;
            }
        }
        self.table[slot] = EMPTY;
    }

    #[inline]
    fn detach(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.arena[idx as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.arena[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.arena[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    #[inline]
    fn attach_front(&mut self, idx: u32) {
        self.arena[idx as usize].prev = NIL;
        self.arena[idx as usize].next = self.head;
        if self.head != NIL {
            self.arena[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `key`, marking it most recently used on a hit.
    #[inline]
    pub fn get(&mut self, key: u64) -> Option<V> {
        let slot = self.find_slot(key)?;
        let idx = self.table[slot];
        if idx != self.head {
            self.detach(idx);
            self.attach_front(idx);
        }
        Some(self.arena[idx as usize].value)
    }

    /// Looks up `key` without updating recency (for inspection in tests).
    pub fn peek(&self, key: u64) -> Option<V> {
        self.find_slot(key)
            .map(|s| self.arena[self.table[s] as usize].value)
    }

    /// Returns `true` if `key` is cached (no recency update).
    pub fn contains(&self, key: u64) -> bool {
        self.find_slot(key).is_some()
    }

    /// Inserts or updates `key`, evicting the LRU entry if at capacity.
    /// Returns the evicted `(key, value)` pair, if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<(u64, V)> {
        if let Some(slot) = self.find_slot(key) {
            let idx = self.table[slot];
            self.arena[idx as usize].value = value;
            if idx != self.head {
                self.detach(idx);
                self.attach_front(idx);
            }
            return None;
        }
        let mut evicted = None;
        if self.len == self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.detach(victim);
            let (old_key, old_val) = {
                let n = &self.arena[victim as usize];
                (n.key, n.value)
            };
            let slot = self.find_slot(old_key).expect("live node is indexed");
            self.table_delete(slot);
            self.free.push(victim);
            self.len -= 1;
            evicted = Some((old_key, old_val));
        }
        let node = Node {
            key,
            value,
            prev: NIL,
            next: NIL,
        };
        let idx = if let Some(i) = self.free.pop() {
            self.arena[i as usize] = node;
            i
        } else {
            self.arena.push(node);
            (self.arena.len() - 1) as u32
        };
        self.table_insert(key, idx);
        self.attach_front(idx);
        self.len += 1;
        evicted
    }

    /// Removes `key`; returns its value if present.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let slot = self.find_slot(key)?;
        let idx = self.table[slot];
        self.table_delete(slot);
        self.detach(idx);
        self.free.push(idx);
        self.len -= 1;
        Some(self.arena[idx as usize].value)
    }

    /// Removes all entries. Keeps the table and arena allocations.
    pub fn clear(&mut self) {
        self.table.fill(EMPTY);
        self.arena.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.len = 0;
    }

    /// Keys from most to least recently used (test helper; O(len)).
    pub fn keys_mru_order(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.arena[cur as usize].key);
            cur = self.arena[cur as usize].next;
        }
        out
    }

    /// Serializes the cache *logically*: capacity plus the `(key, value)`
    /// pairs in MRU-to-LRU order, with `f` encoding each value. The
    /// open-addressed table layout and arena slot assignment are not
    /// captured — every observable behaviour (get/peek/insert/evict order)
    /// depends only on the recency list, which is reproduced exactly.
    pub fn snap_with(
        &self,
        w: &mut fns_snap::SnapWriter,
        mut f: impl FnMut(&mut fns_snap::SnapWriter, &V),
    ) {
        w.usize(self.capacity);
        w.seq(self.len);
        let mut cur = self.head;
        while cur != NIL {
            let n = &self.arena[cur as usize];
            w.u64(n.key);
            f(w, &n.value);
            cur = n.next;
        }
    }

    /// Rebuilds a cache captured by [`Lru64::snap_with`], with `f` decoding
    /// each value. Entries are inserted LRU-first so the restored recency
    /// order matches the snapshot.
    pub fn unsnap_with(
        r: &mut fns_snap::SnapReader,
        mut f: impl FnMut(&mut fns_snap::SnapReader) -> Result<V, fns_snap::SnapError>,
    ) -> Result<Self, fns_snap::SnapError> {
        let capacity = r.usize()?;
        let n = r.seq()?;
        let mut pairs = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let key = r.u64()?;
            pairs.push((key, f(r)?));
        }
        let mut cache = Lru64::new(capacity);
        for (key, value) in pairs.into_iter().rev() {
            cache.insert(key, value);
        }
        Ok(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = Lru64::new(3);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        c.get(1);
        let evicted = c.insert(4, 40);
        assert_eq!(evicted, Some((2, 20)));
        assert_eq!(c.keys_mru_order(), vec![4, 1, 3]);
    }

    #[test]
    fn update_refreshes_recency() {
        let mut c = Lru64::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // update, not insert
        assert_eq!(c.len(), 2);
        let evicted = c.insert(3, 30);
        assert_eq!(evicted, Some((2, 20)));
        assert_eq!(c.get(1), Some(11));
    }

    #[test]
    fn remove_frees_slot() {
        let mut c = Lru64::new(2);
        c.insert(1, 10);
        assert_eq!(c.remove(1), Some(10));
        assert_eq!(c.remove(1), None);
        assert!(c.is_empty());
        c.insert(2, 20);
        c.insert(3, 30);
        assert_eq!(c.len(), 2);
        assert!(c.arena.len() <= 2, "arena reuses freed slots");
    }

    #[test]
    fn peek_does_not_touch() {
        let mut c = Lru64::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.peek(1);
        let evicted = c.insert(3, 30);
        assert_eq!(evicted, Some((1, 10)), "peek must not refresh recency");
    }

    #[test]
    fn clear_resets() {
        let mut c = Lru64::new(2);
        c.insert(1, 10);
        c.clear();
        assert!(c.is_empty());
        assert!(!c.contains(1));
        c.insert(2, 20);
        assert_eq!(c.get(2), Some(20));
    }

    #[test]
    fn single_entry_cache() {
        let mut c = Lru64::new(1);
        c.insert(1, 10);
        assert_eq!(c.insert(2, 20), Some((1, 10)));
        assert_eq!(c.get(2), Some(20));
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_panics() {
        Lru64::<u64>::new(0);
    }

    #[test]
    fn colliding_keys_probe_and_delete_cleanly() {
        // Keys chosen to share low bits; the multiplicative hash spreads
        // them, but a small table still forces probe chains. Exercise
        // insert/delete interleavings that stress backward-shift deletion.
        let mut c = Lru64::new(4); // table of 8 slots
        for k in [0u64, 8, 16, 24] {
            c.insert(k, k);
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.remove(8), Some(8));
        // Every surviving key must remain reachable after the shift.
        assert_eq!(c.get(0), Some(0));
        assert_eq!(c.get(16), Some(16));
        assert_eq!(c.get(24), Some(24));
        c.insert(8, 88);
        assert_eq!(c.get(8), Some(88));
    }

    #[test]
    fn heavy_churn_consistency() {
        let mut c = Lru64::new(16);
        for i in 0..10_000u64 {
            c.insert(i % 64, i);
            if i % 3 == 0 {
                c.remove((i / 2) % 64);
            }
            assert!(c.len() <= 16);
            assert_eq!(c.keys_mru_order().len(), c.len());
        }
    }

    #[test]
    fn no_allocation_growth_in_steady_state() {
        let mut c = Lru64::new(32);
        for i in 0..64u64 {
            c.insert(i, i);
        }
        let arena_cap = c.arena.capacity();
        let free_cap = c.free.capacity();
        for i in 64..50_000u64 {
            c.insert(i, i); // evicts every time
        }
        assert_eq!(c.arena.capacity(), arena_cap, "arena grew under churn");
        assert_eq!(c.free.capacity(), free_cap, "free list grew under churn");
    }
}
