//! A small O(1) LRU cache used for the IOTLB and the IO page-table caches.
//!
//! Implemented as a hash map into an arena of doubly linked nodes; all
//! operations (lookup-with-touch, insert, remove) are O(1). No `unsafe`:
//! links are arena indices and values live in `Option` slots.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct LruNode<K, V> {
    key: K,
    value: Option<V>,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used cache.
///
/// # Examples
///
/// ```
/// use fns_iommu::lru::LruCache;
///
/// let mut c = LruCache::new(2);
/// c.insert(1, "a");
/// c.insert(2, "b");
/// c.get(&1); // touch 1 so 2 becomes the LRU victim
/// c.insert(3, "c");
/// assert!(c.get(&2).is_none());
/// assert_eq!(c.get(&1), Some(&"a"));
/// assert_eq!(c.get(&3), Some(&"c"));
/// ```
#[derive(Debug, Clone)]
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    arena: Vec<LruNode<K, V>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity LRU");
        Self {
            map: HashMap::with_capacity(capacity),
            arena: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.arena[idx].prev, self.arena[idx].next);
        if prev != NIL {
            self.arena[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.arena[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: usize) {
        self.arena[idx].prev = NIL;
        self.arena[idx].next = self.head;
        if self.head != NIL {
            self.arena[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.detach(idx);
        self.attach_front(idx);
        self.arena[idx].value.as_ref()
    }

    /// Looks up `key` without updating recency (for inspection in tests).
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map
            .get(key)
            .and_then(|&i| self.arena[i].value.as_ref())
    }

    /// Returns `true` if `key` is cached (no recency update).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts or updates `key`, evicting the LRU entry if at capacity.
    /// Returns the evicted `(key, value)` pair, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.arena[idx].value = Some(value);
            self.detach(idx);
            self.attach_front(idx);
            return None;
        }
        let mut evicted = None;
        if self.map.len() == self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.detach(victim);
            let old_key = self.arena[victim].key.clone();
            let old_val = self.arena[victim]
                .value
                .take()
                .expect("live node has value");
            self.map.remove(&old_key);
            self.free.push(victim);
            evicted = Some((old_key, old_val));
        }
        let node = LruNode {
            key: key.clone(),
            value: Some(value),
            prev: NIL,
            next: NIL,
        };
        let idx = if let Some(i) = self.free.pop() {
            self.arena[i] = node;
            i
        } else {
            self.arena.push(node);
            self.arena.len() - 1
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
        evicted
    }

    /// Removes `key`; returns its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.detach(idx);
        self.free.push(idx);
        self.arena[idx].value.take()
    }

    /// Removes every entry for which `pred` returns `true`; returns how many
    /// were removed. O(len).
    pub fn remove_matching(&mut self, mut pred: impl FnMut(&K) -> bool) -> usize {
        let victims: Vec<K> = self.map.keys().filter(|k| pred(k)).cloned().collect();
        let n = victims.len();
        for k in victims {
            self.remove(&k);
        }
        n
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.map.clear();
        self.arena.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Keys from most to least recently used (test helper; O(len)).
    pub fn keys_mru_order(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.arena[cur].key.clone());
            cur = self.arena[cur].next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(3);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        c.get(&1);
        let evicted = c.insert(4, 40);
        assert_eq!(evicted, Some((2, 20)));
        assert_eq!(c.keys_mru_order(), vec![4, 1, 3]);
    }

    #[test]
    fn update_refreshes_recency() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // update, not insert
        assert_eq!(c.len(), 2);
        let evicted = c.insert(3, 30);
        assert_eq!(evicted, Some((2, 20)));
        assert_eq!(c.get(&1), Some(&11));
    }

    #[test]
    fn remove_frees_slot() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        assert_eq!(c.remove(&1), Some(10));
        assert_eq!(c.remove(&1), None);
        assert!(c.is_empty());
        c.insert(2, 20);
        c.insert(3, 30);
        assert_eq!(c.len(), 2);
        // Arena reuses the freed slot.
        assert!(c.arena.len() <= 2);
    }

    #[test]
    fn remove_matching_bulk() {
        let mut c = LruCache::new(8);
        for i in 0..8 {
            c.insert(i, i * 10);
        }
        let n = c.remove_matching(|k| k % 2 == 0);
        assert_eq!(n, 4);
        assert_eq!(c.len(), 4);
        assert!(!c.contains(&0));
        assert!(c.contains(&1));
    }

    #[test]
    fn peek_does_not_touch() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.peek(&1);
        let evicted = c.insert(3, 30);
        assert_eq!(evicted, Some((1, 10)), "peek must not refresh recency");
    }

    #[test]
    fn clear_resets() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.clear();
        assert!(c.is_empty());
        c.insert(2, 20);
        assert_eq!(c.get(&2), Some(&20));
    }

    #[test]
    fn single_entry_cache() {
        let mut c = LruCache::new(1);
        c.insert(1, 10);
        assert_eq!(c.insert(2, 20), Some((1, 10)));
        assert_eq!(c.get(&2), Some(&20));
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_panics() {
        LruCache::<u64, u64>::new(0);
    }

    #[test]
    fn heavy_churn_consistency() {
        let mut c = LruCache::new(16);
        for i in 0..10_000u64 {
            c.insert(i % 64, i);
            if i % 3 == 0 {
                c.remove(&((i / 2) % 64));
            }
            assert!(c.len() <= 16);
            // Linked list length must equal map length.
            assert_eq!(c.keys_mru_order().len(), c.len());
        }
    }
}
