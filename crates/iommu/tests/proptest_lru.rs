#![cfg(feature = "proptest")]
//! Requires re-adding `proptest` to this crate's [dev-dependencies].

//! Model-checking the O(1) LRU cache against a naive reference
//! implementation, under arbitrary operation sequences.

use proptest::prelude::*;

use fns_iommu::lru::LruCache;

/// Naive reference: a vector ordered most-recently-used first.
struct NaiveLru {
    items: Vec<(u64, u64)>,
    cap: usize,
}

impl NaiveLru {
    fn new(cap: usize) -> Self {
        Self {
            items: Vec::new(),
            cap,
        }
    }

    fn get(&mut self, k: u64) -> Option<u64> {
        let pos = self.items.iter().position(|&(kk, _)| kk == k)?;
        let e = self.items.remove(pos);
        self.items.insert(0, e);
        Some(e.1)
    }

    fn insert(&mut self, k: u64, v: u64) -> Option<(u64, u64)> {
        if let Some(pos) = self.items.iter().position(|&(kk, _)| kk == k) {
            self.items.remove(pos);
            self.items.insert(0, (k, v));
            return None;
        }
        let mut evicted = None;
        if self.items.len() == self.cap {
            evicted = self.items.pop();
        }
        self.items.insert(0, (k, v));
        evicted
    }

    fn remove(&mut self, k: u64) -> Option<u64> {
        let pos = self.items.iter().position(|&(kk, _)| kk == k)?;
        Some(self.items.remove(pos).1)
    }
}

#[derive(Debug, Clone)]
enum Op {
    Get(u64),
    Insert(u64, u64),
    Remove(u64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..32).prop_map(Op::Get),
            (0u64..32, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
            (0u64..32).prop_map(Op::Remove),
        ],
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lru_matches_naive_model(ops in ops(), cap in 1usize..12) {
        let mut real: LruCache<u64, u64> = LruCache::new(cap);
        let mut naive = NaiveLru::new(cap);
        for op in ops {
            match op {
                Op::Get(k) => {
                    prop_assert_eq!(real.get(&k).copied(), naive.get(k));
                }
                Op::Insert(k, v) => {
                    let a = real.insert(k, v);
                    let b = naive.insert(k, v);
                    prop_assert_eq!(a, b);
                }
                Op::Remove(k) => {
                    prop_assert_eq!(real.remove(&k), naive.remove(k));
                }
            }
            prop_assert_eq!(real.len(), naive.items.len());
            prop_assert!(real.len() <= cap);
            // Full recency order must match.
            let order: Vec<u64> = naive.items.iter().map(|&(k, _)| k).collect();
            prop_assert_eq!(real.keys_mru_order(), order);
        }
    }
}
