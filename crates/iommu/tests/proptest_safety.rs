#![cfg(feature = "proptest")]
//! Requires re-adding `proptest` to this crate's [dev-dependencies].

//! Property tests for the IOMMU model: the strict safety property and the
//! F&S PTcache-preservation rule (DESIGN.md §6, paper §3).

use proptest::prelude::*;

use fns_iommu::{InvalidationScope, Iommu, IommuConfig, Translation};
use fns_iova::types::{Iova, IovaRange};
use fns_mem::addr::PhysAddr;

/// Generates disjoint ranges (by construction) in a compact region.
fn disjoint_ranges() -> impl Strategy<Value = Vec<IovaRange>> {
    proptest::collection::vec(1u64..64, 1..40).prop_map(|sizes| {
        let mut base = 0x10_0000u64; // pfn
        let mut out = Vec::new();
        for s in sizes {
            out.push(IovaRange::new(Iova::from_pfn(base), s));
            base += s + (base % 3); // occasional gaps
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Strict safety: after unmap + IOTLB invalidation (with either scope),
    /// no translation of any unmapped page can succeed, and translations of
    /// still-mapped pages return ground truth.
    #[test]
    fn strict_unmap_blocks_device(ranges in disjoint_ranges(), unmap_mask in proptest::collection::vec(any::<bool>(), 40), preserve in any::<bool>()) {
        let mut m = Iommu::new(IommuConfig::default());
        for (i, r) in ranges.iter().enumerate() {
            for p in r.iter_pages() {
                m.map(p, PhysAddr::from_pfn(p.pfn() ^ 0xABC)).unwrap();
            }
            // Touch some pages to warm caches.
            if i % 2 == 0 {
                m.translate(r.base());
            }
        }
        let scope = if preserve { InvalidationScope::IotlbOnly } else { InvalidationScope::IotlbAndFullPtcache };
        let mut unmapped = Vec::new();
        let mut kept = Vec::new();
        for (i, r) in ranges.iter().enumerate() {
            if unmap_mask[i % unmap_mask.len()] {
                let out = m.unmap_range(*r).unwrap();
                m.invalidate_range(*r, scope);
                // The F&S fixup: preserve mode must invalidate entries made
                // stale by reclamation.
                if preserve {
                    m.invalidate_for_reclaimed(&out.reclaimed);
                }
                unmapped.push(*r);
            } else {
                kept.push(*r);
            }
        }
        for r in &unmapped {
            for p in r.iter_pages() {
                prop_assert!(matches!(m.translate(p), Translation::Fault { .. }),
                    "unmapped page still translated");
            }
        }
        for r in &kept {
            for p in r.iter_pages() {
                match m.translate(p) {
                    Translation::Ok { pa, .. } => prop_assert_eq!(pa, PhysAddr::from_pfn(p.pfn() ^ 0xABC)),
                    Translation::Fault { .. } => prop_assert!(false, "mapped page faulted"),
                }
            }
        }
        prop_assert_eq!(m.stats().stale_iotlb_hits, 0);
        prop_assert_eq!(m.stats().stale_ptcache_walks, 0);
        m.page_table().check_invariants().unwrap();
    }

    /// Translations always agree with the software ground truth, for any
    /// interleaving of map/translate/unmap ops under the strict policy.
    #[test]
    fn translate_matches_ground_truth(ops in proptest::collection::vec((0u8..3, 0u64..256), 1..400), preserve in any::<bool>()) {
        let mut m = Iommu::new(IommuConfig { iotlb_entries: 8, iotlb_huge_entries: 4, ptcache_l1_entries: 2, ptcache_l2_entries: 2, ptcache_l3_entries: 4, iotlb_assoc: None, verify_safety: true, domain: 0 });
        let base = 0xF_0000u64;
        let mut mapped = std::collections::HashMap::new();
        let scope = if preserve { InvalidationScope::IotlbOnly } else { InvalidationScope::IotlbAndFullPtcache };
        for (kind, off) in ops {
            let iova = Iova::from_pfn(base + off);
            match kind {
                0 => {
                    if let std::collections::hash_map::Entry::Vacant(e) = mapped.entry(off) {
                        let pa = PhysAddr::from_pfn(off + 10_000);
                        m.map(iova, pa).unwrap();
                        e.insert(pa);
                    }
                }
                1 => {
                    match m.translate(iova) {
                        Translation::Ok { pa, .. } => {
                            prop_assert_eq!(Some(&pa), mapped.get(&off), "translation disagrees with page table");
                        }
                        Translation::Fault { .. } => {
                            prop_assert!(!mapped.contains_key(&off), "mapped page faulted");
                        }
                    }
                }
                _ => {
                    if mapped.remove(&off).is_some() {
                        let r = IovaRange::new(iova, 1);
                        let out = m.unmap_range(r).unwrap();
                        m.invalidate_range(r, scope);
                        if preserve {
                            m.invalidate_for_reclaimed(&out.reclaimed);
                        }
                    }
                }
            }
        }
        prop_assert_eq!(m.stats().stale_iotlb_hits, 0);
        prop_assert_eq!(m.stats().stale_ptcache_walks, 0);
    }

    /// Walk cost is always between 1 and 4 reads, and the counter identity
    /// `memory_reads = iotlb_misses + l3 + l2 + l1 conditional misses`
    /// holds (the paper's §2.2 accounting).
    #[test]
    fn read_accounting_identity(offsets in proptest::collection::vec(0u64..2048, 1..500)) {
        let mut m = Iommu::new(IommuConfig { iotlb_entries: 16, iotlb_huge_entries: 4, ptcache_l1_entries: 4, ptcache_l2_entries: 4, ptcache_l3_entries: 4, iotlb_assoc: None, verify_safety: true, domain: 0 });
        let base = 0x50_0000u64;
        let mut mapped = std::collections::HashSet::new();
        for &off in &offsets {
            if mapped.insert(off) {
                m.map(Iova::from_pfn(base + off), PhysAddr::from_pfn(off + 1)).unwrap();
            }
            let t = m.translate(Iova::from_pfn(base + off));
            prop_assert!(t.reads() <= 4);
        }
        let s = m.stats();
        prop_assert_eq!(s.faults, 0);
        prop_assert_eq!(s.memory_reads,
            s.iotlb_misses + s.ptcache_l3_misses + s.ptcache_l2_misses + s.ptcache_l1_misses);
        prop_assert_eq!(s.translations, offsets.len() as u64);
        prop_assert_eq!(s.iotlb_hits + s.iotlb_misses, s.translations);
    }
}

// The dependency-free pipelined-walk-cost tests moved to
// `randomized_safety.rs`, which runs in the offline tier-1 suite.
