//! Dependency-free randomized tests for the IOMMU model: the strict safety
//! property and the F&S PTcache-preservation rule (DESIGN.md §6, paper §3).
//!
//! These port the safety-critical properties from `proptest_safety.rs` to
//! plain `#[test]`s driven by [`fns_sim::rng::SimRng`], so they run in the
//! offline tier-1 suite. Each property replays many seeded cases; a failure
//! message carries the seed for replay.

use fns_iommu::{InvalidationScope, Iommu, IommuConfig, Translation};
use fns_iova::types::{Iova, IovaRange};
use fns_mem::addr::PhysAddr;
use fns_sim::rng::SimRng;

/// Generates disjoint ranges (by construction) in a compact region.
fn disjoint_ranges(rng: &mut SimRng) -> Vec<IovaRange> {
    let n = rng.range(1, 40) as usize;
    let mut base = 0x10_0000u64; // pfn
    let mut out = Vec::new();
    for _ in 0..n {
        let s = rng.range(1, 64);
        out.push(IovaRange::new(Iova::from_pfn(base), s));
        base += s + (base % 3); // occasional gaps
    }
    out
}

/// Strict safety: after unmap + IOTLB invalidation (with either scope), no
/// translation of any unmapped page can succeed, and translations of
/// still-mapped pages return ground truth.
#[test]
fn strict_unmap_blocks_device() {
    for case in 0..48u64 {
        let mut rng = SimRng::seed(0xA11CE + case);
        let ranges = disjoint_ranges(&mut rng);
        let preserve = rng.chance(0.5);
        let mut m = Iommu::new(IommuConfig::default());
        for (i, r) in ranges.iter().enumerate() {
            for p in r.iter_pages() {
                m.map(p, PhysAddr::from_pfn(p.pfn() ^ 0xABC)).unwrap();
            }
            // Touch some pages to warm caches.
            if i % 2 == 0 {
                m.translate(r.base());
            }
        }
        let scope = if preserve {
            InvalidationScope::IotlbOnly
        } else {
            InvalidationScope::IotlbAndFullPtcache
        };
        let mut unmapped = Vec::new();
        let mut kept = Vec::new();
        for r in &ranges {
            if rng.chance(0.5) {
                let out = m.unmap_range(*r).unwrap();
                m.invalidate_range(*r, scope);
                // The F&S fixup: preserve mode must invalidate entries made
                // stale by reclamation.
                if preserve {
                    m.invalidate_for_reclaimed(&out.reclaimed);
                }
                unmapped.push(*r);
            } else {
                kept.push(*r);
            }
        }
        for r in &unmapped {
            for p in r.iter_pages() {
                assert!(
                    matches!(m.translate(p), Translation::Fault { .. }),
                    "case {case}: unmapped page still translated"
                );
            }
        }
        for r in &kept {
            for p in r.iter_pages() {
                match m.translate(p) {
                    Translation::Ok { pa, .. } => {
                        assert_eq!(pa, PhysAddr::from_pfn(p.pfn() ^ 0xABC), "case {case}")
                    }
                    Translation::Fault { .. } => panic!("case {case}: mapped page faulted"),
                }
            }
        }
        assert_eq!(m.stats().stale_iotlb_hits, 0, "case {case}");
        assert_eq!(m.stats().stale_ptcache_walks, 0, "case {case}");
        m.page_table().check_invariants().unwrap();
    }
}

/// Translations always agree with the software ground truth, for any
/// interleaving of map/translate/unmap ops under the strict policy, even
/// with tiny caches forcing constant eviction.
#[test]
fn translate_matches_ground_truth() {
    for case in 0..48u64 {
        let mut rng = SimRng::seed(0xB0B + case);
        let preserve = rng.chance(0.5);
        let mut m = Iommu::new(IommuConfig {
            iotlb_entries: 8,
            iotlb_huge_entries: 4,
            ptcache_l1_entries: 2,
            ptcache_l2_entries: 2,
            ptcache_l3_entries: 4,
            iotlb_assoc: None,
            verify_safety: true,
            domain: 0,
            domains: 1,
        });
        let base = 0xF_0000u64;
        let mut mapped = std::collections::HashMap::new();
        let scope = if preserve {
            InvalidationScope::IotlbOnly
        } else {
            InvalidationScope::IotlbAndFullPtcache
        };
        let ops = rng.range(1, 400);
        for _ in 0..ops {
            let kind = rng.range(0, 3);
            let off = rng.range(0, 256);
            let iova = Iova::from_pfn(base + off);
            match kind {
                0 => {
                    if let std::collections::hash_map::Entry::Vacant(e) = mapped.entry(off) {
                        let pa = PhysAddr::from_pfn(off + 10_000);
                        m.map(iova, pa).unwrap();
                        e.insert(pa);
                    }
                }
                1 => match m.translate(iova) {
                    Translation::Ok { pa, .. } => {
                        assert_eq!(
                            Some(&pa),
                            mapped.get(&off),
                            "case {case}: translation disagrees with page table"
                        );
                    }
                    Translation::Fault { .. } => {
                        assert!(
                            !mapped.contains_key(&off),
                            "case {case}: mapped page faulted"
                        );
                    }
                },
                _ => {
                    if mapped.remove(&off).is_some() {
                        let r = IovaRange::new(iova, 1);
                        let out = m.unmap_range(r).unwrap();
                        m.invalidate_range(r, scope);
                        if preserve {
                            m.invalidate_for_reclaimed(&out.reclaimed);
                        }
                    }
                }
            }
        }
        assert_eq!(m.stats().stale_iotlb_hits, 0, "case {case}");
        assert_eq!(m.stats().stale_ptcache_walks, 0, "case {case}");
    }
}

/// Walk cost is always between 1 and 4 reads, and the counter identity
/// `memory_reads = iotlb_misses + l3 + l2 + l1 conditional misses` holds
/// (the paper's §2.2 accounting).
#[test]
fn read_accounting_identity() {
    for case in 0..32u64 {
        let mut rng = SimRng::seed(0xCAFE + case);
        let mut m = Iommu::new(IommuConfig {
            iotlb_entries: 16,
            iotlb_huge_entries: 4,
            ptcache_l1_entries: 4,
            ptcache_l2_entries: 4,
            ptcache_l3_entries: 4,
            iotlb_assoc: None,
            verify_safety: true,
            domain: 0,
            domains: 1,
        });
        let base = 0x50_0000u64;
        let mut mapped = std::collections::HashSet::new();
        let n = rng.range(1, 500);
        for _ in 0..n {
            let off = rng.range(0, 2048);
            if mapped.insert(off) {
                m.map(Iova::from_pfn(base + off), PhysAddr::from_pfn(off + 1))
                    .unwrap();
            }
            let t = m.translate(Iova::from_pfn(base + off));
            assert!(t.reads() <= 4, "case {case}");
        }
        let s = m.stats();
        assert_eq!(s.faults, 0, "case {case}");
        assert_eq!(
            s.memory_reads,
            s.iotlb_misses + s.ptcache_l3_misses + s.ptcache_l2_misses + s.ptcache_l1_misses,
            "case {case}"
        );
        assert_eq!(s.translations, n, "case {case}");
        assert_eq!(s.iotlb_hits + s.iotlb_misses, s.translations, "case {case}");
    }
}

/// Runs a pipelined descriptor cycle — translate a page of descriptor `d`
/// while unmapping + invalidating the matching page of descriptor `d-1`,
/// which is how translations and invalidations interleave in the steady
/// state — and returns the average memory reads per page-table walk.
fn pipelined_walk_cost(base: u64, scope: InvalidationScope) -> (f64, Iommu) {
    let mut m = Iommu::new(IommuConfig::default());
    let desc = |d: u64| IovaRange::new(Iova::from_pfn(base + (d % 8) * 64), 64);
    let mut total_walk_reads = 0u64;
    let mut walks = 0u64;
    for p in desc(0).iter_pages() {
        m.map(p, PhysAddr::from_pfn(p.pfn())).unwrap();
    }
    for d in 0..100u64 {
        for p in desc(d + 1).iter_pages() {
            m.map(p, PhysAddr::from_pfn(p.pfn())).unwrap();
        }
        for i in 0..64 {
            let p = desc(d).page(i);
            let before = m.stats().memory_reads;
            let t = m.translate(p);
            assert!(t.pa().is_some());
            if !matches!(
                t,
                Translation::Ok {
                    iotlb_hit: true,
                    ..
                }
            ) {
                total_walk_reads += m.stats().memory_reads - before;
                walks += 1;
            }
            // Pipelined strict unmap of the previous descriptor's page.
            if d > 0 {
                let prev = desc(d - 1).page(i);
                let r = IovaRange::new(prev, 1);
                let out = m.unmap_range(r).unwrap();
                m.invalidate_range(r, scope);
                if scope == InvalidationScope::IotlbOnly {
                    m.invalidate_for_reclaimed(&out.reclaimed);
                }
            }
        }
    }
    (total_walk_reads as f64 / walks as f64, m)
}

/// Deterministic end-to-end check of the paper's central cost claim: with
/// PTcaches preserved across invalidations, a strict-mode IOTLB miss costs
/// one memory read even with invalidations interleaved into the datapath.
#[test]
fn warm_preserved_ptcache_gives_one_read_walks() {
    let (avg, m) = pipelined_walk_cost(0x80_0000, InvalidationScope::IotlbOnly);
    assert!(
        avg < 1.01,
        "expected ~1 read per walk with preserved PTcaches, got {avg:.3}"
    );
    assert_eq!(m.stats().stale_iotlb_hits, 0);
    assert_eq!(m.stats().stale_ptcache_walks, 0);
}

/// The same pipelined cycle under stock-Linux full invalidation pays
/// (nearly) full walks: every interleaved unmap wipes the shared PTcache
/// entries the next translation needs.
#[test]
fn linux_invalidation_forces_full_walks() {
    let (avg, m) = pipelined_walk_cost(0x90_0000, InvalidationScope::IotlbAndFullPtcache);
    assert!(
        avg > 3.5,
        "expected ~4 reads per walk under full invalidation, got {avg:.3}"
    );
    assert_eq!(m.stats().stale_iotlb_hits, 0);
}
