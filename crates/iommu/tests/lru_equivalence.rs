//! Differential test: the open-addressed [`Lru64`] must be operation-for-
//! operation equivalent to the generic [`LruCache`] reference model —
//! identical hits, identical evictions, identical MRU order. This is the
//! guarantee that swapping it into the IOTLB/PTcaches changes no simulated
//! counter anywhere in the workspace.

use fns_iommu::lru::LruCache;
use fns_iommu::lru64::Lru64;
use fns_sim::rng::SimRng;

/// Drives both caches through an identical randomized op stream and checks
/// every return value and the full recency order after each step.
fn churn(capacity: usize, key_space: u64, ops: usize, seed: u64) {
    let mut reference: LruCache<u64, u64> = LruCache::new(capacity);
    let mut fast: Lru64<u64> = Lru64::new(capacity);
    let mut rng = SimRng::seed(seed);
    for step in 0..ops {
        let key = rng.range(0, key_space);
        match rng.index(10) {
            0..=3 => {
                let a = reference.get(&key).copied();
                let b = fast.get(key);
                assert_eq!(a, b, "get({key}) diverged at step {step}");
            }
            4..=6 => {
                let val = rng.next_u64();
                let a = reference.insert(key, val);
                let b = fast.insert(key, val);
                assert_eq!(a, b, "insert({key}) eviction diverged at step {step}");
            }
            7 => {
                let a = reference.remove(&key);
                let b = fast.remove(key);
                assert_eq!(a, b, "remove({key}) diverged at step {step}");
            }
            8 => {
                let a = reference.peek(&key).copied();
                let b = fast.peek(key);
                assert_eq!(a, b, "peek({key}) diverged at step {step}");
            }
            _ => {
                assert_eq!(reference.contains(&key), fast.contains(key), "step {step}");
            }
        }
        assert_eq!(reference.len(), fast.len(), "len diverged at step {step}");
        assert_eq!(
            reference.keys_mru_order(),
            fast.keys_mru_order(),
            "recency order diverged at step {step}"
        );
    }
}

#[test]
fn equivalent_under_light_load() {
    // Key space much larger than capacity: mostly compulsory misses.
    churn(16, 1 << 20, 4_000, 1);
}

#[test]
fn equivalent_under_heavy_reuse() {
    // Key space barely above capacity: constant eviction/touch churn.
    churn(32, 48, 8_000, 2);
}

#[test]
fn equivalent_at_tiny_capacity() {
    churn(1, 4, 2_000, 3);
    churn(2, 6, 2_000, 4);
}

#[test]
fn equivalent_at_ptcache_like_shapes() {
    // The shapes the IOMMU actually instantiates (see IommuConfig):
    // small upper-level caches, wider leaf cache and IOTLB.
    for (cap, space, seed) in [(4, 64, 5), (32, 256, 6), (64, 1024, 7), (512, 4096, 8)] {
        churn(cap, space, 3_000, seed);
    }
}

#[test]
fn equivalent_with_clear_interleaved() {
    let mut reference: LruCache<u64, u64> = LruCache::new(8);
    let mut fast: Lru64<u64> = Lru64::new(8);
    let mut rng = SimRng::seed(9);
    for round in 0..50 {
        for _ in 0..100 {
            let key = rng.range(0, 24);
            assert_eq!(reference.insert(key, round), fast.insert(key, round));
        }
        reference.clear();
        fast.clear();
        assert!(fast.is_empty());
        assert_eq!(reference.keys_mru_order(), fast.keys_mru_order());
    }
}
