//! Tests for 2 MB huge-page mappings (the paper's §5 future-work direction:
//! hugepages extend IOTLB reach, cutting miss counts rather than miss cost).

use fns_iommu::{InvalidationScope, Iommu, IommuConfig, Translation};
use fns_iova::types::{Iova, IovaRange};
use fns_mem::addr::PhysAddr;

const HUGE_PFNS: u64 = 512;

fn aligned_iova(region: u64) -> Iova {
    Iova::from_pfn(region * HUGE_PFNS)
}

fn aligned_pa(region: u64) -> PhysAddr {
    PhysAddr::from_pfn(region * HUGE_PFNS)
}

#[test]
fn huge_map_translates_every_4k_offset() {
    let mut m = Iommu::new(IommuConfig::default());
    m.map_huge(aligned_iova(5), aligned_pa(40)).unwrap();
    for off in [0u64, 1, 17, 511] {
        let iova = Iova::from_pfn(5 * HUGE_PFNS + off);
        let t = m.translate(iova);
        assert_eq!(
            t.pa(),
            Some(PhysAddr::from_pfn(40 * HUGE_PFNS + off)),
            "offset {off}"
        );
    }
    assert_eq!(m.stats().stale_iotlb_hits, 0);
}

#[test]
fn huge_walk_costs_three_reads_cold_then_zero() {
    let mut m = Iommu::new(IommuConfig::default());
    m.map_huge(aligned_iova(9), aligned_pa(9)).unwrap();
    // Cold: read L1, L2, then the L3 huge leaf = 3 reads.
    assert!(matches!(
        m.translate(aligned_iova(9)),
        Translation::Ok {
            reads: 3,
            iotlb_hit: false,
            ..
        }
    ));
    // Any page in the same 2 MB region now hits the huge IOTLB entry.
    let other = Iova::from_pfn(9 * HUGE_PFNS + 300);
    assert!(matches!(
        m.translate(other),
        Translation::Ok {
            reads: 0,
            iotlb_hit: true,
            ..
        }
    ));
}

#[test]
fn one_huge_entry_covers_512_pages() {
    // The IOTLB-reach argument: 512 pages of traffic, 1 IOTLB miss total.
    let mut m = Iommu::new(IommuConfig::default());
    m.map_huge(aligned_iova(3), aligned_pa(3)).unwrap();
    for off in 0..HUGE_PFNS {
        m.translate(Iova::from_pfn(3 * HUGE_PFNS + off));
    }
    assert_eq!(m.stats().iotlb_misses, 1);
    assert_eq!(m.stats().memory_reads, 3);
}

#[test]
fn huge_and_4k_mappings_coexist() {
    let mut m = Iommu::new(IommuConfig::default());
    m.map_huge(aligned_iova(1), aligned_pa(100)).unwrap();
    let small = Iova::from_pfn(2 * HUGE_PFNS + 7);
    m.map(small, PhysAddr::from_pfn(999)).unwrap();
    assert_eq!(m.translate(small).pa(), Some(PhysAddr::from_pfn(999)));
    assert_eq!(m.translate(aligned_iova(1)).pa(), Some(aligned_pa(100)));
}

#[test]
fn four_k_map_under_huge_rejected() {
    let mut m = Iommu::new(IommuConfig::default());
    m.map_huge(aligned_iova(2), aligned_pa(2)).unwrap();
    assert!(m
        .map(Iova::from_pfn(2 * HUGE_PFNS + 5), PhysAddr::from_pfn(1))
        .is_err());
    // And the reverse: huge over an existing 4 KB mapping.
    m.map(Iova::from_pfn(7 * HUGE_PFNS), PhysAddr::from_pfn(2))
        .unwrap();
    assert!(m.map_huge(aligned_iova(7), aligned_pa(7)).is_err());
}

#[test]
fn huge_unmap_plus_invalidate_blocks_device() {
    let mut m = Iommu::new(IommuConfig::default());
    m.map_huge(aligned_iova(4), aligned_pa(4)).unwrap();
    m.translate(Iova::from_pfn(4 * HUGE_PFNS + 10));
    m.unmap_huge(aligned_iova(4)).unwrap();
    // Invalidate the whole 2 MB range.
    m.invalidate_range(
        IovaRange::new(aligned_iova(4), HUGE_PFNS),
        InvalidationScope::IotlbOnly,
    );
    assert!(matches!(
        m.translate(Iova::from_pfn(4 * HUGE_PFNS + 10)),
        Translation::Fault { .. }
    ));
    assert_eq!(m.stats().stale_iotlb_hits, 0);
}

#[test]
fn skipping_huge_invalidation_leaves_stale_reach() {
    // The hazard of pinned-hugepage schemes, made visible: unmap without
    // invalidation and the device still reaches all 2 MB.
    let mut m = Iommu::new(IommuConfig::default());
    m.map_huge(aligned_iova(6), aligned_pa(6)).unwrap();
    m.translate(aligned_iova(6));
    m.unmap_huge(aligned_iova(6)).unwrap();
    let t = m.translate(Iova::from_pfn(6 * HUGE_PFNS + 42));
    assert!(t.pa().is_some(), "stale huge entry still translates");
    assert!(m.stats().stale_iotlb_hits > 0);
}

#[test]
fn huge_iotlb_capacity_evicts() {
    let cfg = IommuConfig {
        iotlb_huge_entries: 2,
        ..Default::default()
    };
    let mut m = Iommu::new(cfg);
    for r in 10..13u64 {
        m.map_huge(aligned_iova(r), aligned_pa(r)).unwrap();
        m.translate(aligned_iova(r));
    }
    // Region 10 was evicted: translating again walks (PTcache-L2 hit -> the
    // L3 huge leaf read).
    let before = m.stats().memory_reads;
    assert!(matches!(
        m.translate(aligned_iova(10)),
        Translation::Ok {
            iotlb_hit: false,
            ..
        }
    ));
    assert!(m.stats().memory_reads > before);
}

#[test]
#[should_panic(expected = "unaligned huge IOVA")]
fn unaligned_huge_map_panics() {
    let mut m = Iommu::new(IommuConfig::default());
    let _ = m.map_huge(Iova::from_pfn(5), aligned_pa(1));
}
