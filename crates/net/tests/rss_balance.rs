//! Statistical balance of the RSS indirection at datacenter scale.
//!
//! The sharded engine partitions the dc-scale scenario by NIC, counting
//! flows through `rss_queue` — so a skewed spread would both overload one
//! simulated NIC and unbalance the shard workers. The SplitMix64
//! finalizer has no distribution guarantee for the dense consecutive flow
//! ids the generators hand out; these tests pin that at the dc-scale
//! shape (20 480 flows over 8 NICs × 4 queues = 32 rings) the spread is
//! balanced in practice: every queue and every NIC within 2× of the mean,
//! and nothing starved.

use fns_net::packet::rss_queue;
use fns_net::FlowId;

/// The dc-scale shape: 20 480 flows, 8 NICs × 4 queues.
const FLOWS: u32 = 20_480;
const NICS: usize = 8;
const QUEUES_PER_NIC: usize = 4;
const RINGS: usize = NICS * QUEUES_PER_NIC;

/// Per-ring flow counts for ids 1..=FLOWS (the generators' id range).
fn ring_histogram() -> Vec<u64> {
    let mut counts = vec![0u64; RINGS];
    for f in 1..=FLOWS {
        counts[rss_queue(FlowId(f), RINGS)] += 1;
    }
    counts
}

#[test]
fn per_queue_spread_is_balanced_at_dc_scale() {
    let counts = ring_histogram();
    let mean = FLOWS as u64 / RINGS as u64;
    for (q, &c) in counts.iter().enumerate() {
        assert!(c > 0, "queue {q} starved (0 of {FLOWS} flows)");
        assert!(
            c < 2 * mean,
            "queue {q} overloaded: {c} flows > 2x the {mean} mean"
        );
    }
    assert_eq!(counts.iter().sum::<u64>(), FLOWS as u64);
}

#[test]
fn per_nic_aggregation_is_balanced_at_dc_scale() {
    // The shard partition assigns flow f to NIC rss_queue(f) / queues_per_nic;
    // aggregate the ring histogram the same way.
    let counts = ring_histogram();
    let mut per_nic = [0u64; NICS];
    for (q, &c) in counts.iter().enumerate() {
        per_nic[q / QUEUES_PER_NIC] += c;
    }
    let mean = FLOWS as u64 / NICS as u64;
    for (nic, &c) in per_nic.iter().enumerate() {
        assert!(c > 0, "NIC {nic} starved");
        assert!(
            c < 2 * mean,
            "NIC {nic} overloaded: {c} flows > 2x the {mean} mean"
        );
    }
}

#[test]
fn spread_is_deterministic_and_degenerate_cases_pin_to_zero() {
    for f in [1u32, 7, 4096, FLOWS] {
        assert_eq!(
            rss_queue(FlowId(f), RINGS),
            rss_queue(FlowId(f), RINGS),
            "rss_queue must be a pure function"
        );
        assert_eq!(rss_queue(FlowId(f), 1), 0);
        assert_eq!(rss_queue(FlowId(f), 0), 0);
    }
}
