#![cfg(feature = "proptest")]
//! Requires re-adding `proptest` to this crate's [dev-dependencies].

//! Property tests for the transport: sender invariants under adversarial
//! ACK streams, and sender/receiver end-to-end conservation over lossy,
//! reordering channels.

use proptest::prelude::*;

use fns_net::packet::{FlowId, PacketKind};
use fns_net::receiver::FlowReceiver;
use fns_net::sender::{DctcpConfig, DctcpSender};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sender never violates its structural invariants no matter what
    /// ACK stream it sees (including bogus/duplicate/ancient ACKs), and
    /// cwnd stays within [1 MSS, max].
    #[test]
    fn sender_invariants_under_adversarial_acks(
        acks in proptest::collection::vec((0u64..1_000_000, 0u32..4, 1u32..16), 1..300),
    ) {
        let cfg = DctcpConfig::default();
        let mut s = DctcpSender::new(FlowId(0), cfg, 0);
        s.set_unbounded();
        let mut now = 0u64;
        for (i, (ack_seq, ecn, pkts)) in acks.iter().enumerate() {
            // Interleave some sends.
            for _ in 0..(i % 3) {
                s.next_packet(now);
            }
            // Only deliver ACKs for bytes at or below what was sent —
            // acking unsent data is the one thing a real peer cannot do.
            let ack = (*ack_seq).min(s.bytes_in_flight() + 1);
            s.on_ack(ack, *ecn, *pkts, now);
            now += 1_000;
            prop_assert!(s.cwnd() >= cfg.mss as u64, "cwnd collapsed below 1 MSS");
            prop_assert!(s.cwnd() <= cfg.max_cwnd_bytes);
            prop_assert!(s.alpha() >= 0.0 && s.alpha() <= 1.0);
            // bytes_in_flight computed without underflow.
            let _ = s.bytes_in_flight();
        }
    }

    /// End-to-end conservation: over a channel with random drops and
    /// reordering, retransmissions (fast + RTO) eventually deliver every
    /// byte exactly once, in order.
    #[test]
    fn lossy_channel_delivers_exactly_once(
        app_bytes in 4_096u64..300_000,
        seed in 0u64..5_000,
    ) {
        let cfg = DctcpConfig::default();
        let mut s = DctcpSender::new(FlowId(0), cfg, 0);
        s.enqueue_app_bytes(app_bytes);
        let mut r = FlowReceiver::new(FlowId(0), 4);
        let mut rng = seed;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut now = 0u64;
        let mut in_flight: Vec<fns_net::packet::Packet> = Vec::new();
        let mut steps = 0;
        while !s.is_drained() {
            steps += 1;
            prop_assert!(steps < 200_000, "transfer did not converge");
            now += 10_000;
            // Emit whatever the window allows.
            while let Some(p) = s.next_packet(now) {
                in_flight.push(p);
            }
            // Deliver up to 8 packets with 15% drop and occasional swap.
            if in_flight.len() >= 2 && next() % 4 == 0 {
                let n = in_flight.len();
                in_flight.swap(n - 1, n - 2);
            }
            let deliver = in_flight.len().min(8);
            let batch: Vec<_> = in_flight.drain(..deliver).collect();
            for p in batch {
                if next() % 100 < 15 {
                    continue; // dropped
                }
                if let Some(a) = r.on_data(&p, now) {
                    let out = s.on_ack(a.ack_seq, a.ecn_echo, a.acked_pkts, now);
                    if out.fast_retransmit {
                        in_flight.push(s.fast_retransmit_packet(now));
                    }
                }
            }
            // Flush receiver coalescing and fire RTOs.
            if let Some(a) = r.flush_ack() {
                let out = s.on_ack(a.ack_seq, a.ecn_echo, a.acked_pkts, now);
                if out.fast_retransmit {
                    in_flight.push(s.fast_retransmit_packet(now));
                }
            }
            if let Some(d) = s.rto_deadline() {
                if d <= now {
                    s.on_rto(now);
                }
            }
        }
        prop_assert_eq!(r.delivered_bytes, app_bytes, "byte conservation");
        prop_assert_eq!(r.rcv_nxt(), app_bytes);
        prop_assert_eq!(r.ooo_segments(), 0);
    }

    /// The receiver's delivered-byte counter is monotone and never exceeds
    /// the highest byte offered, for arbitrary segment streams.
    #[test]
    fn receiver_delivery_bounded_by_offered(
        segs in proptest::collection::vec((0u64..64, 1u32..5), 1..200),
    ) {
        let mut r = FlowReceiver::new(FlowId(1), 3);
        let mut highest = 0u64;
        let mut last_delivered = 0u64;
        for (start_pkts, len_pkts) in segs {
            let seq = start_pkts * 1000;
            let bytes = len_pkts * 1000;
            highest = highest.max(seq + bytes as u64);
            let p = fns_net::packet::Packet::data(FlowId(1), seq, bytes, 0);
            r.on_data(&p, 0);
            prop_assert!(r.delivered_bytes >= last_delivered, "monotone");
            prop_assert!(r.delivered_bytes <= highest, "no invention of bytes");
            last_delivered = r.delivered_bytes;
        }
    }
}

/// ACK metadata sanity: what the receiver claims to ack matches the data it
/// has seen.
#[test]
fn ack_metadata_accounts_for_every_data_packet() {
    let mut r = FlowReceiver::new(FlowId(0), 4);
    let mut acked_pkts = 0u64;
    for i in 0..97u64 {
        let p = fns_net::packet::Packet::data(FlowId(0), i * 100, 100, 0);
        assert!(matches!(p.kind, PacketKind::Data));
        if let Some(a) = r.on_data(&p, 0) {
            acked_pkts += a.acked_pkts as u64;
        }
    }
    if let Some(a) = r.flush_ack() {
        acked_pkts += a.acked_pkts as u64;
    }
    assert_eq!(acked_pkts, 97, "every data packet is covered by some ACK");
}
