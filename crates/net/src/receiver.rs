//! Per-flow receive-side state: reordering, ACK generation, GRO coalescing.
//!
//! The receive side is where the paper's ACK-rate mechanism lives: in-order
//! trains are coalesced GRO-style (one ACK per aggregated batch), while any
//! out-of-order arrival triggers an immediate duplicate ACK. Higher drop
//! rates therefore directly inflate the number of ACK (Tx) DMAs per
//! received page — the contention the paper measures in Figure 2c.

use std::collections::BTreeMap;

use fns_sim::time::Nanos;

use crate::packet::{FlowId, Packet};

/// An ACK the receiver wants transmitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckToSend {
    /// Cumulative ack: next expected byte.
    pub ack_seq: u64,
    /// ECN marks echoed by this ACK.
    pub ecn_echo: u32,
    /// Data packets this ACK covers.
    pub acked_pkts: u32,
}

/// Per-flow receiver state.
///
/// # Examples
///
/// ```
/// use fns_net::receiver::FlowReceiver;
/// use fns_net::packet::{FlowId, Packet};
///
/// let mut r = FlowReceiver::new(FlowId(0), 4);
/// // Three in-order packets: coalesced, no ACK yet (GRO batch of 4).
/// for i in 0..3 {
///     let p = Packet::data(FlowId(0), i * 4096, 4096, 0);
///     assert!(r.on_data(&p, 0).is_none());
/// }
/// // Fourth completes the batch: one cumulative ACK.
/// let p = Packet::data(FlowId(0), 3 * 4096, 4096, 0);
/// let ack = r.on_data(&p, 0).unwrap();
/// assert_eq!(ack.ack_seq, 4 * 4096);
/// assert_eq!(ack.acked_pkts, 4);
/// ```
#[derive(Debug, Clone)]
pub struct FlowReceiver {
    flow: FlowId,
    rcv_nxt: u64,
    /// Out-of-order segments: start -> end (exclusive).
    ooo: BTreeMap<u64, u64>,
    /// GRO batch size: in-order packets coalesced per ACK.
    coalesce: u32,
    batch_pkts: u32,
    batch_marks: u32,
    /// Remaining packets to ACK immediately (Linux's quick-ack mode entered
    /// after loss/reordering episodes). This is the mechanism that couples
    /// drop rate to ACK rate — the paper's §2.2 flow-count effect.
    quickack: u32,
    /// Total bytes delivered in order to the application.
    pub delivered_bytes: u64,
    /// Duplicate ACKs generated (out-of-order arrivals).
    pub dup_acks_sent: u64,
    /// Total ACKs generated.
    pub acks_sent: u64,
    /// Data packets received (including duplicates).
    pub data_pkts: u64,
}

impl FlowReceiver {
    /// Creates receive state for `flow`, coalescing `coalesce` in-order
    /// packets per ACK.
    ///
    /// # Panics
    ///
    /// Panics if `coalesce` is zero.
    pub fn new(flow: FlowId, coalesce: u32) -> Self {
        assert!(coalesce > 0, "zero coalesce factor");
        Self {
            flow,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            coalesce,
            batch_pkts: 0,
            batch_marks: 0,
            quickack: 0,
            delivered_bytes: 0,
            dup_acks_sent: 0,
            acks_sent: 0,
            data_pkts: 0,
        }
    }

    /// The flow this receiver serves.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Next in-order byte expected.
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Number of buffered out-of-order segments.
    pub fn ooo_segments(&self) -> usize {
        self.ooo.len()
    }

    /// Processes an arriving data packet; returns an ACK to transmit, if
    /// one is due now.
    pub fn on_data(&mut self, p: &Packet, _now: Nanos) -> Option<AckToSend> {
        debug_assert!(p.is_data());
        self.data_pkts += 1;
        if p.ecn_marked {
            self.batch_marks += 1;
        }
        let start = p.seq;
        let end = p.seq + p.bytes as u64;
        if start > self.rcv_nxt {
            // Out of order: buffer the segment, send an immediate dupack,
            // and enter quick-ack mode for a while (as Linux does after a
            // reordering episode).
            self.insert_ooo(start, end);
            self.quickack = 32;
            self.dup_acks_sent += 1;
            self.acks_sent += 1;
            let marks = std::mem::take(&mut self.batch_marks);
            let pkts = std::mem::take(&mut self.batch_pkts) + 1;
            return Some(AckToSend {
                ack_seq: self.rcv_nxt,
                ecn_echo: marks,
                acked_pkts: pkts,
            });
        }
        if end <= self.rcv_nxt {
            // Pure duplicate (retransmission overlap): ack immediately so
            // the sender makes progress.
            self.acks_sent += 1;
            return Some(AckToSend {
                ack_seq: self.rcv_nxt,
                ecn_echo: std::mem::take(&mut self.batch_marks),
                acked_pkts: 1,
            });
        }
        // In-order (possibly partially duplicate) delivery.
        let had_holes = !self.ooo.is_empty();
        self.deliver_to(end);
        self.drain_ooo();
        self.batch_pkts += 1;
        let quick = self.quickack > 0;
        self.quickack = self.quickack.saturating_sub(1);
        // Ack immediately when this packet interacts with reordering —
        // either it filled a hole or holes remain — or while quick-ack mode
        // is active, so the sender's recovery is not delayed by coalescing.
        if self.batch_pkts >= self.coalesce || had_holes || !self.ooo.is_empty() || quick {
            self.acks_sent += 1;
            let marks = std::mem::take(&mut self.batch_marks);
            let pkts = std::mem::take(&mut self.batch_pkts);
            return Some(AckToSend {
                ack_seq: self.rcv_nxt,
                ecn_echo: marks,
                acked_pkts: pkts,
            });
        }
        None
    }

    /// Forces out a pending coalesced ACK (delayed-ACK timer expiry, or the
    /// NAPI poll ending its batch).
    pub fn flush_ack(&mut self) -> Option<AckToSend> {
        if self.batch_pkts == 0 {
            return None;
        }
        self.acks_sent += 1;
        let marks = std::mem::take(&mut self.batch_marks);
        let pkts = std::mem::take(&mut self.batch_pkts);
        Some(AckToSend {
            ack_seq: self.rcv_nxt,
            ecn_echo: marks,
            acked_pkts: pkts,
        })
    }

    fn deliver_to(&mut self, end: u64) {
        if end > self.rcv_nxt {
            self.delivered_bytes += end - self.rcv_nxt;
            self.rcv_nxt = end;
        }
    }

    fn insert_ooo(&mut self, start: u64, end: u64) {
        // Merge with overlapping/adjacent segments.
        let mut s = start;
        let mut e = end;
        let overlapping: Vec<u64> = self
            .ooo
            .range(..=e)
            .filter(|&(_, &oe)| oe >= s)
            .map(|(&os, _)| os)
            .collect();
        for os in overlapping {
            let oe = self.ooo.remove(&os).unwrap();
            s = s.min(os);
            e = e.max(oe);
        }
        self.ooo.insert(s, e);
    }

    fn drain_ooo(&mut self) {
        while let Some((&s, &e)) = self.ooo.first_key_value() {
            if s > self.rcv_nxt {
                break;
            }
            self.ooo.remove(&s);
            self.deliver_to(e);
        }
    }

    /// Serializes the full receiver state for checkpointing (the
    /// out-of-order map travels in key order, which `BTreeMap` iteration
    /// already guarantees).
    pub fn snap(&self, w: &mut fns_snap::SnapWriter) {
        w.u32(self.flow.0);
        w.u64(self.rcv_nxt);
        w.seq(self.ooo.len());
        for (&s, &e) in &self.ooo {
            w.u64(s);
            w.u64(e);
        }
        w.u32(self.coalesce);
        w.u32(self.batch_pkts);
        w.u32(self.batch_marks);
        w.u32(self.quickack);
        w.u64(self.delivered_bytes);
        w.u64(self.dup_acks_sent);
        w.u64(self.acks_sent);
        w.u64(self.data_pkts);
    }

    /// Rebuilds a receiver captured by [`FlowReceiver::snap`].
    pub fn unsnap(r: &mut fns_snap::SnapReader) -> Result<Self, fns_snap::SnapError> {
        let flow = FlowId(r.u32()?);
        let rcv_nxt = r.u64()?;
        let n = r.seq()?;
        let mut ooo = BTreeMap::new();
        for _ in 0..n {
            let s = r.u64()?;
            let e = r.u64()?;
            ooo.insert(s, e);
        }
        Ok(Self {
            flow,
            rcv_nxt,
            ooo,
            coalesce: r.u32()?,
            batch_pkts: r.u32()?,
            batch_marks: r.u32()?,
            quickack: r.u32()?,
            delivered_bytes: r.u64()?,
            dup_acks_sent: r.u64()?,
            acks_sent: r.u64()?,
            data_pkts: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(seq: u64, bytes: u32) -> Packet {
        Packet::data(FlowId(0), seq, bytes, 0)
    }

    fn rx(coalesce: u32) -> FlowReceiver {
        FlowReceiver::new(FlowId(0), coalesce)
    }

    #[test]
    fn in_order_coalesced_acks() {
        let mut r = rx(4);
        let mut acks = 0;
        for i in 0..16u64 {
            if r.on_data(&data(i * 100, 100), 0).is_some() {
                acks += 1;
            }
        }
        assert_eq!(acks, 4, "one ACK per 4 packets");
        assert_eq!(r.delivered_bytes, 1600);
        assert_eq!(r.dup_acks_sent, 0);
    }

    #[test]
    fn out_of_order_triggers_immediate_dupack() {
        let mut r = rx(8);
        assert!(r.on_data(&data(0, 100), 0).is_none());
        // Gap: packet 2 arrives before packet 1.
        let ack = r.on_data(&data(200, 100), 0).unwrap();
        assert_eq!(ack.ack_seq, 100, "dupack points at the hole");
        assert_eq!(r.ooo_segments(), 1);
        // Filling the hole delivers everything and acks immediately
        // (ooo buffer was non-empty).
        let ack = r.on_data(&data(100, 100), 0).unwrap();
        assert_eq!(ack.ack_seq, 300);
        assert_eq!(r.delivered_bytes, 300);
        assert_eq!(r.ooo_segments(), 0);
    }

    #[test]
    fn duplicate_data_is_acked_not_delivered() {
        let mut r = rx(1);
        r.on_data(&data(0, 100), 0);
        let before = r.delivered_bytes;
        let ack = r.on_data(&data(0, 100), 0).unwrap();
        assert_eq!(ack.ack_seq, 100);
        assert_eq!(r.delivered_bytes, before);
    }

    #[test]
    fn ooo_merging() {
        let mut r = rx(8);
        r.on_data(&data(0, 100), 0);
        r.on_data(&data(300, 100), 0); // hole at 100..300
        r.on_data(&data(200, 100), 0); // merges with 300..400
        assert_eq!(r.ooo_segments(), 1);
        r.on_data(&data(100, 100), 0);
        assert_eq!(r.rcv_nxt(), 400);
        assert_eq!(r.delivered_bytes, 400);
    }

    #[test]
    fn ecn_marks_echoed_in_acks() {
        let mut r = rx(2);
        let mut p = data(0, 100);
        p.ecn_marked = true;
        assert!(r.on_data(&p, 0).is_none());
        let mut p2 = data(100, 100);
        p2.ecn_marked = true;
        let ack = r.on_data(&p2, 0).unwrap();
        assert_eq!(ack.ecn_echo, 2);
        assert_eq!(ack.acked_pkts, 2);
    }

    #[test]
    fn flush_emits_partial_batch() {
        let mut r = rx(8);
        r.on_data(&data(0, 100), 0);
        r.on_data(&data(100, 100), 0);
        let ack = r.flush_ack().unwrap();
        assert_eq!(ack.ack_seq, 200);
        assert_eq!(ack.acked_pkts, 2);
        assert!(r.flush_ack().is_none(), "nothing pending after flush");
    }

    #[test]
    fn quickack_after_reordering_episode() {
        let mut r = rx(8);
        // In-order warmup: coalesced.
        for i in 0..8u64 {
            r.on_data(&data(i * 100, 100), 0);
        }
        let acks_before = r.acks_sent;
        // A reordering episode...
        r.on_data(&data(900, 100), 0); // gap at 800
        r.on_data(&data(800, 100), 0); // filled
                                       // ...puts the receiver in quick-ack mode: the next in-order packets
                                       // are each acked immediately despite coalesce = 8.
        let mut quick_acks = 0;
        for i in 10..18u64 {
            quick_acks += r.on_data(&data(i * 100, 100), 0).is_some() as u32;
        }
        assert_eq!(quick_acks, 8, "every packet acked in quick-ack mode");
        assert!(r.acks_sent > acks_before + 8);
    }

    #[test]
    fn more_drops_mean_more_acks_per_byte() {
        // The paper's §2.2 mechanism, distilled: deliver the same stream
        // with and without drops and compare ACK counts.
        let clean_acks = {
            let mut r = rx(8);
            let mut acks = 0;
            for i in 0..64u64 {
                acks += r.on_data(&data(i * 100, 100), 0).is_some() as u64;
            }
            acks
        };
        let lossy_acks = {
            let mut r = rx(8);
            let mut acks = 0;
            for i in 0..64u64 {
                if i % 8 == 3 {
                    continue; // dropped; arrives later
                }
                acks += r.on_data(&data(i * 100, 100), 0).is_some() as u64;
            }
            // Retransmissions fill the holes.
            for i in (0..64u64).filter(|i| i % 8 == 3) {
                acks += r.on_data(&data(i * 100, 100), 0).is_some() as u64;
            }
            acks
        };
        assert!(
            lossy_acks > 2 * clean_acks,
            "drops should inflate ACK rate: {lossy_acks} vs {clean_acks}"
        );
    }
}
