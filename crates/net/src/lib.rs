//! Transport substrate: DCTCP flows, ECN switch queue, ACK generation.
//!
//! The paper's experiments run DCTCP over a single switch between two
//! hosts. The transport matters to the memory-protection story through one
//! causal chain (§2.2): more flows → AIMD drives higher drop rates → more
//! out-of-order packets and duplicate ACKs → more Tx(ACK) DMAs per received
//! page → more IOTLB/PTcache contention. This crate reproduces that chain:
//!
//! * [`packet`] — the wire unit,
//! * [`sender`] — a DCTCP sender (slow start, ECN-fraction `alpha` window
//!   reduction, fast retransmit, RTO with exponential backoff),
//! * [`receiver`] — per-flow receive state with GRO-style ACK coalescing
//!   and immediate duplicate ACKs on out-of-order arrival,
//! * [`switchq`] — a finite FIFO queue with a DCTCP marking threshold.

pub mod fault;
pub mod packet;
pub mod receiver;
pub mod sender;
pub mod switchq;

pub use fault::NetFault;
pub use packet::{FlowId, Packet, PacketKind};
pub use receiver::{AckToSend, FlowReceiver};
pub use sender::{AckOutcome, DctcpConfig, DctcpSender};
pub use switchq::SwitchQueue;
