//! Typed network faults and the fault-aware link model.
//!
//! The wire between the hosts is where real deployments see loss,
//! corruption, reordering, and duplication. [`SwitchQueue::enqueue_with`]
//! applies a [`FaultPlane`]'s packet-level fault mix at the enqueue point:
//!
//! * **drop** — the packet never enters the queue ([`NetFault::Dropped`]),
//! * **corrupt** — delivered with [`Packet::corrupted`] set; the receiver's
//!   checksum rejects it and the transport retransmits,
//! * **reorder** — swapped behind the packet queued before it,
//! * **duplicate** — enqueued twice.
//!
//! Recovery is the transport's job (DCTCP retransmission), so this module
//! only injects and accounts; the chaos harness checks goodput survives.

use fns_faults::{FaultKind, FaultPlane};

use crate::packet::{FlowId, Packet};
use crate::switchq::SwitchQueue;

/// Typed faults raised on the simulated wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// The packet was dropped (injected loss or switch-queue overflow).
    Dropped { flow: FlowId, injected: bool },
}

impl std::fmt::Display for NetFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetFault::Dropped { flow, injected } => {
                let why = if *injected {
                    "injected loss"
                } else {
                    "queue overflow"
                };
                write!(f, "packet on flow {} dropped ({why})", flow.0)
            }
        }
    }
}

impl std::error::Error for NetFault {}

impl SwitchQueue {
    /// Enqueues a packet under fault injection.
    ///
    /// Rolls the plane's packet-fault kinds in a fixed order (drop,
    /// corrupt, duplicate, reorder) and applies whichever fire. A capacity
    /// drop at the switch is reported the same way as an injected drop so
    /// callers have one error path.
    pub fn enqueue_with(&mut self, mut p: Packet, faults: &mut FaultPlane) -> Result<(), NetFault> {
        let flow = p.flow;
        if faults.roll(FaultKind::PacketDrop) {
            return Err(NetFault::Dropped {
                flow,
                injected: true,
            });
        }
        if faults.roll(FaultKind::PacketCorrupt) {
            p.corrupted = true;
        }
        let duplicate = faults.roll(FaultKind::PacketDuplicate);
        let reorder = faults.roll(FaultKind::PacketReorder);
        if !self.enqueue(p) {
            return Err(NetFault::Dropped {
                flow,
                injected: false,
            });
        }
        if duplicate {
            // Best effort: a duplicate that hits the capacity wall just
            // vanishes, which is what a real switch would do.
            self.enqueue(p);
        }
        if reorder {
            self.swap_tail();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fns_faults::FaultConfig;
    use fns_sim::rng::SimRng;

    fn pkt(seq: u64) -> Packet {
        Packet::data(FlowId(0), seq, 100, 0)
    }

    fn plane(kind: FaultKind) -> FaultPlane {
        // Fire on every visit of `kind`, nothing else.
        FaultPlane::new(FaultConfig::disabled().with_every(kind, 1), SimRng::seed(1))
    }

    #[test]
    fn injected_drop_never_enqueues() {
        let mut q = SwitchQueue::new(10_000, 10_000);
        let mut f = plane(FaultKind::PacketDrop);
        assert_eq!(
            q.enqueue_with(pkt(0), &mut f),
            Err(NetFault::Dropped {
                flow: FlowId(0),
                injected: true
            })
        );
        assert!(q.is_empty());
        assert_eq!(f.stats().injected_of(FaultKind::PacketDrop), 1);
    }

    #[test]
    fn corruption_marks_the_packet() {
        let mut q = SwitchQueue::new(10_000, 10_000);
        let mut f = plane(FaultKind::PacketCorrupt);
        q.enqueue_with(pkt(0), &mut f).unwrap();
        assert!(q.dequeue().unwrap().corrupted);
    }

    #[test]
    fn duplication_enqueues_twice() {
        let mut q = SwitchQueue::new(10_000, 10_000);
        let mut f = plane(FaultKind::PacketDuplicate);
        q.enqueue_with(pkt(7), &mut f).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.dequeue().unwrap().seq, 7);
        assert_eq!(q.dequeue().unwrap().seq, 7);
    }

    #[test]
    fn reordering_swaps_the_tail() {
        let mut q = SwitchQueue::new(10_000, 10_000);
        let mut off = FaultPlane::disabled();
        q.enqueue_with(pkt(0), &mut off).unwrap();
        let mut f = plane(FaultKind::PacketReorder);
        q.enqueue_with(pkt(1), &mut f).unwrap();
        // The reordered packet jumps ahead of its predecessor.
        assert_eq!(q.dequeue().unwrap().seq, 1);
        assert_eq!(q.dequeue().unwrap().seq, 0);
    }

    #[test]
    fn capacity_drop_reports_uninjected() {
        let mut q = SwitchQueue::new(150, 0);
        let mut off = FaultPlane::disabled();
        q.enqueue_with(pkt(0), &mut off).unwrap();
        assert_eq!(
            q.enqueue_with(pkt(1), &mut off),
            Err(NetFault::Dropped {
                flow: FlowId(0),
                injected: false
            })
        );
    }

    #[test]
    fn disabled_plane_is_transparent() {
        let mut q = SwitchQueue::new(10_000, 10_000);
        let mut off = FaultPlane::disabled();
        for s in 0..5 {
            q.enqueue_with(pkt(s), &mut off).unwrap();
        }
        for s in 0..5 {
            let p = q.dequeue().unwrap();
            assert_eq!(p.seq, s);
            assert!(!p.corrupted);
        }
    }
}
