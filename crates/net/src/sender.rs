//! DCTCP sender state machine.
//!
//! Implements the congestion-control behaviour the paper's measurement
//! setup relies on: slow start, ECN-fraction-proportional window reduction
//! (`cwnd -= cwnd * alpha / 2` once per window), fast retransmit on three
//! duplicate ACKs, and retransmission timeouts with exponential backoff —
//! the mechanism behind the paper's P99.9 tail-latency inflation.

use fns_sim::time::Nanos;

use crate::packet::{FlowId, Packet};

/// DCTCP parameters.
#[derive(Debug, Clone, Copy)]
pub struct DctcpConfig {
    /// Maximum segment size in bytes (the paper uses a 4 KB MTU; apps in
    /// §4.2 use 9 KB).
    pub mss: u32,
    /// Initial congestion window, in segments.
    pub init_cwnd_segments: u32,
    /// DCTCP `g` (alpha EWMA gain), canonically 1/16.
    pub g: f64,
    /// Minimum RTO.
    pub min_rto: Nanos,
    /// Maximum congestion window in bytes (receive window / socket buffer).
    pub max_cwnd_bytes: u64,
}

impl Default for DctcpConfig {
    fn default() -> Self {
        Self {
            mss: 4096,
            init_cwnd_segments: 10,
            g: 1.0 / 16.0,
            // Linux's minimum RTO; dominates the P99.9+ tail when drops
            // force timeouts.
            min_rto: 4 * 1_000_000, // 4 ms (datacenter-tuned, as in DCTCP deployments)
            max_cwnd_bytes: 1 << 20,
        }
    }
}

/// What the sender wants done after processing an ACK.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AckOutcome {
    /// Bytes newly acknowledged.
    pub newly_acked: u64,
    /// Fast retransmit triggered: resend one MSS from `snd_una`.
    pub fast_retransmit: bool,
}

/// Per-flow DCTCP sender.
///
/// Byte-stream oriented: the application deposits bytes with
/// [`DctcpSender::enqueue_app_bytes`] (or marks the flow unbounded for
/// iperf-style traffic) and the datapath drains packets with
/// [`DctcpSender::next_packet`].
///
/// # Examples
///
/// ```
/// use fns_net::sender::{DctcpConfig, DctcpSender};
/// use fns_net::packet::FlowId;
///
/// let mut s = DctcpSender::new(FlowId(0), DctcpConfig::default(), 0);
/// s.set_unbounded();
/// let p = s.next_packet(100).expect("window is open");
/// assert_eq!(p.bytes, 4096);
/// assert_eq!(s.bytes_in_flight(), 4096);
/// ```
#[derive(Debug, Clone)]
pub struct DctcpSender {
    flow: FlowId,
    cfg: DctcpConfig,
    /// Congestion window, bytes.
    cwnd: u64,
    /// Slow-start threshold, bytes.
    ssthresh: u64,
    /// First unacknowledged byte.
    snd_una: u64,
    /// Next byte to transmit.
    snd_nxt: u64,
    /// Application bytes available to send (end of stream sequence).
    app_limit: u64,
    unbounded: bool,
    /// DCTCP ECN fraction estimate.
    alpha: f64,
    /// Marked/total counters over the current observation window.
    window_marked: u64,
    window_acked: u64,
    /// Sequence at which the current alpha window ends.
    window_end: u64,
    /// Window in which we last reacted to congestion (one cut per RTT).
    last_cut_window_end: u64,
    dup_acks: u32,
    /// NewReno recovery: `snd_nxt` at loss detection. While in recovery,
    /// every partial ACK retransmits the next hole immediately instead of
    /// stalling until an RTO — essential with bursty tail-drop losses.
    recovery_high: Option<u64>,
    /// Smoothed RTT estimate.
    srtt: Nanos,
    rto_backoff: u32,
    /// Deadline of the pending RTO timer (None when nothing is in flight).
    rto_deadline: Option<Nanos>,
    /// Lifetime stats.
    pub retransmits: u64,
    /// Lifetime count of RTO events.
    pub timeouts: u64,
}

impl DctcpSender {
    /// Creates a sender for `flow`; `now` seeds the timer state.
    pub fn new(flow: FlowId, cfg: DctcpConfig, now: Nanos) -> Self {
        let _ = now;
        Self {
            flow,
            cwnd: cfg.mss as u64 * cfg.init_cwnd_segments as u64,
            ssthresh: u64::MAX,
            snd_una: 0,
            snd_nxt: 0,
            app_limit: 0,
            unbounded: false,
            alpha: 0.0,
            window_marked: 0,
            window_acked: 0,
            window_end: 0,
            last_cut_window_end: 0,
            dup_acks: 0,
            recovery_high: None,
            srtt: 50_000, // 50 us initial guess for an intra-rack RTT
            rto_backoff: 0,
            rto_deadline: None,
            cfg,
            retransmits: 0,
            timeouts: 0,
        }
    }

    /// The flow this sender drives.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Marks the flow as having unlimited data (iperf).
    pub fn set_unbounded(&mut self) {
        self.unbounded = true;
    }

    /// Deposits `bytes` of application data for transmission.
    pub fn enqueue_app_bytes(&mut self, bytes: u64) {
        self.app_limit += bytes;
    }

    /// Bytes sent but not yet acknowledged.
    pub fn bytes_in_flight(&self) -> u64 {
        debug_assert!(self.snd_nxt >= self.snd_una);
        self.snd_nxt.saturating_sub(self.snd_una)
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u64 {
        self.cwnd
    }

    /// Current DCTCP alpha.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Bytes the application has queued that are not yet acknowledged.
    pub fn unacked_app_bytes(&self) -> u64 {
        if self.unbounded {
            u64::MAX
        } else {
            self.app_limit - self.snd_una
        }
    }

    /// Returns `true` when all deposited application data is acknowledged.
    pub fn is_drained(&self) -> bool {
        !self.unbounded && self.snd_una == self.app_limit
    }

    /// Restarts the connection for churn workloads: congestion state resets
    /// to a fresh connection (initial cwnd, slow start, cleared DCTCP alpha
    /// and recovery state, initial RTT guess) while the byte stream
    /// continues where it left off. Keeping `snd_una`/`snd_nxt` means the
    /// receiver's cumulative-ACK state stays valid across the restart, so
    /// the sim models a new connection's *congestion* behaviour — the part
    /// that stresses mapping churn — without re-plumbing per-flow tables.
    pub fn restart_connection(&mut self) {
        self.cwnd = self.cfg.mss as u64 * self.cfg.init_cwnd_segments as u64;
        self.ssthresh = u64::MAX;
        self.alpha = 0.0;
        self.window_marked = 0;
        self.window_acked = 0;
        self.window_end = self.snd_nxt;
        self.last_cut_window_end = self.snd_una;
        self.dup_acks = 0;
        self.recovery_high = None;
        self.srtt = 50_000;
        self.rto_backoff = 0;
    }

    /// Emits the next data packet if the window and app data allow.
    pub fn next_packet(&mut self, now: Nanos) -> Option<Packet> {
        let limit = if self.unbounded {
            u64::MAX
        } else {
            self.app_limit
        };
        if self.snd_nxt >= limit || self.bytes_in_flight() >= self.cwnd {
            return None;
        }
        let bytes = (self.cfg.mss as u64)
            .min(limit - self.snd_nxt)
            .min(self.cwnd - self.bytes_in_flight()) as u32;
        if bytes == 0 {
            return None;
        }
        let p = Packet::data(self.flow, self.snd_nxt, bytes, now);
        self.snd_nxt += bytes as u64;
        if self.rto_deadline.is_none() {
            self.arm_rto(now);
        }
        Some(p)
    }

    fn rto(&self) -> Nanos {
        let base = self.cfg.min_rto.max(2 * self.srtt);
        // Cap the exponential backoff: modern stacks (SACK, RACK-TLP)
        // recover long before deep backoff, and without a cap a flow that
        // loses a retransmit during persistent congestion can back itself
        // off beyond the experiment horizon.
        base << self.rto_backoff.min(2)
    }

    fn arm_rto(&mut self, now: Nanos) {
        self.rto_deadline = Some(now + self.rto());
    }

    /// Deadline of the retransmission timer, if armed.
    pub fn rto_deadline(&self) -> Option<Nanos> {
        self.rto_deadline
    }

    /// Processes a cumulative ACK.
    pub fn on_ack(
        &mut self,
        ack_seq: u64,
        ecn_echo: u32,
        acked_pkts: u32,
        now: Nanos,
    ) -> AckOutcome {
        let mut out = AckOutcome::default();
        // Alpha accounting uses every ACK, duplicate or not.
        self.window_marked += ecn_echo as u64;
        self.window_acked += (acked_pkts as u64).max(1);
        if ack_seq <= self.snd_una {
            // Duplicate ACK.
            self.dup_acks += 1;
            if self.dup_acks == 3 && self.recovery_high.is_none() {
                out.fast_retransmit = true;
                self.retransmits += 1;
                self.recovery_high = Some(self.snd_nxt);
                self.react_to_loss();
            }
            return out;
        }
        // New data acknowledged.
        out.newly_acked = ack_seq - self.snd_una;
        self.snd_una = ack_seq;
        // A late ACK for data sent before an RTO's go-back-N can advance
        // `snd_una` past the rewound `snd_nxt`; clamp so the flight size
        // never underflows.
        self.snd_nxt = self.snd_nxt.max(self.snd_una);
        self.dup_acks = 0;
        self.rto_backoff = 0;
        if let Some(high) = self.recovery_high {
            if ack_seq < high {
                // Partial ACK: the next hole is lost too; retransmit it now
                // (NewReno RFC 6582 behaviour).
                out.fast_retransmit = true;
                self.retransmits += 1;
            } else {
                self.recovery_high = None;
            }
        }
        if let Some(sent) = self.rtt_sample(now) {
            self.srtt = (7 * self.srtt + sent) / 8;
        }
        if self.bytes_in_flight() > 0 {
            self.arm_rto(now);
        } else {
            self.rto_deadline = None;
        }
        // Window growth.
        if self.cwnd < self.ssthresh {
            self.cwnd += out.newly_acked; // slow start
        } else {
            // Congestion avoidance: +MSS per cwnd worth of ACKs.
            self.cwnd += (self.cfg.mss as u64 * out.newly_acked) / self.cwnd.max(1);
        }
        self.cwnd = self.cwnd.min(self.cfg.max_cwnd_bytes);
        // DCTCP alpha update + proportional cut once per window.
        if self.snd_una >= self.window_end {
            let frac = if self.window_acked == 0 {
                0.0
            } else {
                self.window_marked as f64 / self.window_acked as f64
            };
            self.alpha = (1.0 - self.cfg.g) * self.alpha + self.cfg.g * frac;
            if self.window_marked > 0 && self.window_end > self.last_cut_window_end {
                let cut = (self.cwnd as f64 * self.alpha / 2.0) as u64;
                self.cwnd = (self.cwnd - cut).max(self.cfg.mss as u64);
                self.ssthresh = self.cwnd;
                self.last_cut_window_end = self.window_end;
            }
            self.window_marked = 0;
            self.window_acked = 0;
            self.window_end = self.snd_nxt;
        }
        out
    }

    /// Crude RTT sample: we do not track per-packet send times here; the
    /// datapath owns timestamps. Returns `None` (hook for future precision).
    fn rtt_sample(&self, _now: Nanos) -> Option<Nanos> {
        None
    }

    /// Feeds an externally measured RTT sample (the datapath timestamps
    /// packets end to end).
    pub fn record_rtt(&mut self, rtt: Nanos) {
        self.srtt = (7 * self.srtt + rtt) / 8;
    }

    /// Handles a retransmission timeout: collapse the window and go back to
    /// `snd_una`. Returns the sequence to resend from.
    pub fn on_rto(&mut self, now: Nanos) -> u64 {
        self.timeouts += 1;
        self.retransmits += 1;
        self.ssthresh = (self.cwnd / 2).max(2 * self.cfg.mss as u64);
        self.cwnd = self.cfg.mss as u64;
        self.snd_nxt = self.snd_una; // go-back-N
        self.dup_acks = 0;
        self.recovery_high = None;
        self.rto_backoff += 1;
        self.arm_rto(now);
        self.snd_una
    }

    /// Fast-retransmit helper: the segment to resend.
    ///
    /// Clamped to the application stream end — resending a full MSS past
    /// the final short segment would deliver bytes the application never
    /// sent.
    pub fn fast_retransmit_packet(&mut self, now: Nanos) -> Packet {
        let limit = if self.unbounded {
            u64::MAX
        } else {
            self.app_limit
        };
        let bytes = (self.cfg.mss as u64)
            .min(limit.saturating_sub(self.snd_una))
            .max(1) as u32;
        Packet::data(self.flow, self.snd_una, bytes, now)
    }

    fn react_to_loss(&mut self) {
        self.ssthresh = (self.cwnd / 2).max(2 * self.cfg.mss as u64);
        self.cwnd = self.ssthresh;
    }

    /// Serializes the full sender state for checkpointing.
    pub fn snap(&self, w: &mut fns_snap::SnapWriter) {
        w.u32(self.flow.0);
        w.u32(self.cfg.mss);
        w.u32(self.cfg.init_cwnd_segments);
        w.f64(self.cfg.g);
        w.u64(self.cfg.min_rto);
        w.u64(self.cfg.max_cwnd_bytes);
        w.u64(self.cwnd);
        w.u64(self.ssthresh);
        w.u64(self.snd_una);
        w.u64(self.snd_nxt);
        w.u64(self.app_limit);
        w.bool(self.unbounded);
        w.f64(self.alpha);
        w.u64(self.window_marked);
        w.u64(self.window_acked);
        w.u64(self.window_end);
        w.u64(self.last_cut_window_end);
        w.u32(self.dup_acks);
        w.opt(&self.recovery_high, |w, v| w.u64(*v));
        w.u64(self.srtt);
        w.u32(self.rto_backoff);
        w.opt(&self.rto_deadline, |w, v| w.u64(*v));
        w.u64(self.retransmits);
        w.u64(self.timeouts);
    }

    /// Rebuilds a sender captured by [`DctcpSender::snap`].
    pub fn unsnap(r: &mut fns_snap::SnapReader) -> Result<Self, fns_snap::SnapError> {
        Ok(Self {
            flow: FlowId(r.u32()?),
            cfg: DctcpConfig {
                mss: r.u32()?,
                init_cwnd_segments: r.u32()?,
                g: r.f64()?,
                min_rto: r.u64()?,
                max_cwnd_bytes: r.u64()?,
            },
            cwnd: r.u64()?,
            ssthresh: r.u64()?,
            snd_una: r.u64()?,
            snd_nxt: r.u64()?,
            app_limit: r.u64()?,
            unbounded: r.bool()?,
            alpha: r.f64()?,
            window_marked: r.u64()?,
            window_acked: r.u64()?,
            window_end: r.u64()?,
            last_cut_window_end: r.u64()?,
            dup_acks: r.u32()?,
            recovery_high: r.opt(|r| r.u64())?,
            srtt: r.u64()?,
            rto_backoff: r.u32()?,
            rto_deadline: r.opt(|r| r.u64())?,
            retransmits: r.u64()?,
            timeouts: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sender() -> DctcpSender {
        let mut s = DctcpSender::new(FlowId(0), DctcpConfig::default(), 0);
        s.set_unbounded();
        s
    }

    #[test]
    fn window_limits_emission() {
        let mut s = sender();
        let mut sent = 0;
        while s.next_packet(0).is_some() {
            sent += 1;
        }
        assert_eq!(sent, 10, "initial window is 10 segments");
        assert_eq!(s.bytes_in_flight(), 10 * 4096);
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut s = sender();
        while s.next_packet(0).is_some() {}
        let before = s.cwnd();
        // ACK the whole window: slow start adds the acked bytes.
        s.on_ack(s.snd_nxt, 0, 10, 1000);
        assert_eq!(s.cwnd(), before * 2);
    }

    #[test]
    fn ecn_marks_shrink_window_proportionally() {
        let mut s = sender();
        // Push alpha up with fully marked windows.
        for round in 1..=20u64 {
            while s.next_packet(round * 1000).is_some() {}
            let target = s.snd_nxt;
            s.on_ack(target, 10, 10, round * 1000 + 500);
        }
        assert!(
            s.alpha() > 0.5,
            "alpha should converge up, got {}",
            s.alpha()
        );
        // And cwnd must be pinned near the floor under persistent marking.
        assert!(s.cwnd() < 64 * 4096, "cwnd {} did not shrink", s.cwnd());
    }

    #[test]
    fn unmarked_windows_decay_alpha() {
        let mut s = sender();
        for round in 1..=4u64 {
            while s.next_packet(round * 1000).is_some() {}
            s.on_ack(s.snd_nxt, 10, 10, round * 1000);
        }
        let high = s.alpha();
        for round in 5..=30u64 {
            while s.next_packet(round * 1000).is_some() {}
            s.on_ack(s.snd_nxt, 0, 10, round * 1000);
        }
        assert!(s.alpha() < high / 4.0);
    }

    #[test]
    fn triple_dupack_fast_retransmits() {
        let mut s = sender();
        while s.next_packet(0).is_some() {}
        let before_cwnd = s.cwnd();
        assert!(!s.on_ack(0, 0, 1, 10).fast_retransmit);
        assert!(!s.on_ack(0, 0, 1, 20).fast_retransmit);
        let out = s.on_ack(0, 0, 1, 30);
        assert!(out.fast_retransmit);
        assert!(s.cwnd() < before_cwnd);
        let p = s.fast_retransmit_packet(40);
        assert_eq!(p.seq, 0);
        assert_eq!(s.retransmits, 1);
    }

    #[test]
    fn rto_collapses_window_and_goes_back() {
        let mut s = sender();
        while s.next_packet(0).is_some() {}
        s.on_ack(4096, 0, 1, 100); // advance una a bit
        let deadline = s.rto_deadline().unwrap();
        let resend_from = s.on_rto(deadline);
        assert_eq!(resend_from, 4096);
        assert_eq!(s.cwnd(), 4096);
        assert_eq!(s.timeouts, 1);
        // Backoff doubles the next deadline distance.
        let d2 = s.rto_deadline().unwrap() - deadline;
        assert!(d2 >= 2 * DctcpConfig::default().min_rto);
        // snd_nxt rewound: window reopens for the lost data.
        assert!(s.next_packet(deadline + 1).is_some());
    }

    #[test]
    fn bounded_flow_drains() {
        let mut s = DctcpSender::new(FlowId(1), DctcpConfig::default(), 0);
        s.enqueue_app_bytes(6000);
        let p1 = s.next_packet(0).unwrap();
        assert_eq!(p1.bytes, 4096);
        let p2 = s.next_packet(0).unwrap();
        assert_eq!(p2.bytes, 6000 - 4096, "tail segment is short");
        assert!(s.next_packet(0).is_none());
        assert!(!s.is_drained());
        s.on_ack(6000, 0, 2, 100);
        assert!(s.is_drained());
        assert_eq!(s.rto_deadline(), None);
    }

    #[test]
    fn cwnd_capped_by_max() {
        let mut s = sender();
        for round in 1..=60u64 {
            while s.next_packet(round).is_some() {}
            s.on_ack(s.snd_nxt, 0, 64, round * 1000);
        }
        assert!(s.cwnd() <= DctcpConfig::default().max_cwnd_bytes);
    }
}
