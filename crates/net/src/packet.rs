//! The wire unit exchanged between the two hosts.

use fns_sim::time::Nanos;

/// Identifier of one transport flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u32);

/// Packet payload semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// Data segment starting at byte `seq`.
    Data,
    /// Cumulative acknowledgement.
    Ack {
        /// Next byte expected by the receiver.
        ack_seq: u64,
        /// Number of ECN-marked data packets this ACK echoes (DCTCP carries
        /// per-packet marks; we aggregate per ACK).
        ecn_echo: u32,
        /// Data packets covered by this ACK (for `alpha` accounting).
        acked_pkts: u32,
    },
}

/// A packet in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Owning flow.
    pub flow: FlowId,
    /// Starting byte sequence (data) or 0 (ACKs).
    pub seq: u64,
    /// Wire size in bytes, including payload (ACKs are 64 B).
    pub bytes: u32,
    /// Data or ACK.
    pub kind: PacketKind,
    /// Set by the switch when the queue exceeds the marking threshold.
    pub ecn_marked: bool,
    /// Set by fault injection: the payload is damaged and the receiver's
    /// checksum will reject it on delivery.
    pub corrupted: bool,
    /// Transmission timestamp (for RTT/latency measurement).
    pub sent_at: Nanos,
}

/// Wire size of a pure ACK.
pub const ACK_BYTES: u32 = 64;

/// RSS indirection: spreads a flow over `queues` receive queues the way a
/// NIC's Toeplitz hash spreads 5-tuples — a fixed avalanche mix of the flow
/// id, reduced modulo the queue count. Deterministic (the simulation relies
/// on replaying the same spread) and well-distributed even for the small
/// consecutive flow ids the generators hand out.
pub fn rss_queue(flow: FlowId, queues: usize) -> usize {
    if queues <= 1 {
        return 0;
    }
    // SplitMix64 finalizer: full-period avalanche on 64 bits.
    let mut h = u64::from(flow.0) ^ 0x9E37_79B9_7F4A_7C15;
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    (h % queues as u64) as usize
}

impl Packet {
    /// Creates a data packet.
    pub fn data(flow: FlowId, seq: u64, bytes: u32, sent_at: Nanos) -> Self {
        Self {
            flow,
            seq,
            bytes,
            kind: PacketKind::Data,
            ecn_marked: false,
            corrupted: false,
            sent_at,
        }
    }

    /// Creates an ACK packet.
    pub fn ack(flow: FlowId, ack_seq: u64, ecn_echo: u32, acked_pkts: u32, sent_at: Nanos) -> Self {
        Self {
            flow,
            seq: 0,
            bytes: ACK_BYTES,
            kind: PacketKind::Ack {
                ack_seq,
                ecn_echo,
                acked_pkts,
            },
            ecn_marked: false,
            corrupted: false,
            sent_at,
        }
    }

    /// Returns `true` for data packets.
    pub fn is_data(&self) -> bool {
        matches!(self.kind, PacketKind::Data)
    }

    /// Serializes the packet for checkpointing.
    pub fn snap(&self, w: &mut fns_snap::SnapWriter) {
        w.u32(self.flow.0);
        w.u64(self.seq);
        w.u32(self.bytes);
        match self.kind {
            PacketKind::Data => w.u8(0),
            PacketKind::Ack {
                ack_seq,
                ecn_echo,
                acked_pkts,
            } => {
                w.u8(1);
                w.u64(ack_seq);
                w.u32(ecn_echo);
                w.u32(acked_pkts);
            }
        }
        w.bool(self.ecn_marked);
        w.bool(self.corrupted);
        w.u64(self.sent_at);
    }

    /// Rebuilds a packet captured by [`Packet::snap`].
    pub fn unsnap(r: &mut fns_snap::SnapReader) -> Result<Self, fns_snap::SnapError> {
        let flow = FlowId(r.u32()?);
        let seq = r.u64()?;
        let bytes = r.u32()?;
        let kind = match r.u8()? {
            0 => PacketKind::Data,
            1 => PacketKind::Ack {
                ack_seq: r.u64()?,
                ecn_echo: r.u32()?,
                acked_pkts: r.u32()?,
            },
            t => {
                return Err(fns_snap::SnapError::BadTag {
                    what: "packet kind",
                    tag: t as u64,
                })
            }
        };
        Ok(Self {
            flow,
            seq,
            bytes,
            kind,
            ecn_marked: r.bool()?,
            corrupted: r.bool()?,
            sent_at: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let d = Packet::data(FlowId(1), 4096, 4096, 10);
        assert!(d.is_data());
        assert_eq!(d.seq, 4096);
        let a = Packet::ack(FlowId(1), 8192, 2, 3, 20);
        assert!(!a.is_data());
        assert_eq!(a.bytes, ACK_BYTES);
        match a.kind {
            PacketKind::Ack {
                ack_seq,
                ecn_echo,
                acked_pkts,
            } => {
                assert_eq!(ack_seq, 8192);
                assert_eq!(ecn_echo, 2);
                assert_eq!(acked_pkts, 3);
            }
            PacketKind::Data => panic!("expected ack"),
        }
    }
}
