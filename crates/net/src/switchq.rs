//! Switch output queue with DCTCP ECN marking.
//!
//! A single FIFO with a byte capacity and a marking threshold `K`: packets
//! enqueued while the queue holds more than `K` bytes get ECN-marked
//! (DCTCP's step marking). Both hosts sit one switch apart in the paper's
//! testbed; the switch is never the drop point in the experiments (drops
//! happen at the receiving NIC), but its marking is what keeps DCTCP's
//! window in check.

use std::collections::VecDeque;

use crate::packet::Packet;

/// FIFO switch queue with a DCTCP marking threshold.
///
/// # Examples
///
/// ```
/// use fns_net::switchq::SwitchQueue;
/// use fns_net::packet::{FlowId, Packet};
///
/// let mut q = SwitchQueue::new(10_000, 100);
/// q.enqueue(Packet::data(FlowId(0), 0, 200, 0));
/// // Queue already above K=100 when the next packet arrives: it is marked.
/// q.enqueue(Packet::data(FlowId(0), 200, 200, 0));
/// assert!(!q.dequeue().unwrap().ecn_marked);
/// assert!(q.dequeue().unwrap().ecn_marked);
/// ```
#[derive(Debug, Clone)]
pub struct SwitchQueue {
    queue: VecDeque<Packet>,
    capacity_bytes: u64,
    mark_threshold_bytes: u64,
    used_bytes: u64,
    /// Packets dropped at the switch (should stay 0 in host-bottleneck
    /// experiments).
    pub drops: u64,
    /// Packets ECN-marked.
    pub marks: u64,
}

impl SwitchQueue {
    /// Creates a queue with `capacity_bytes` and marking threshold `k`.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero or below the threshold.
    pub fn new(capacity_bytes: u64, k: u64) -> Self {
        assert!(capacity_bytes > 0, "zero-capacity switch queue");
        assert!(k <= capacity_bytes, "marking threshold above capacity");
        Self {
            queue: VecDeque::new(),
            capacity_bytes,
            mark_threshold_bytes: k,
            used_bytes: 0,
            drops: 0,
            marks: 0,
        }
    }

    /// Enqueues a packet, ECN-marking it if the queue is above `K`.
    /// Returns `false` on a (capacity) drop.
    pub fn enqueue(&mut self, mut p: Packet) -> bool {
        if self.used_bytes + p.bytes as u64 > self.capacity_bytes {
            self.drops += 1;
            return false;
        }
        if self.used_bytes > self.mark_threshold_bytes {
            p.ecn_marked = true;
            self.marks += 1;
        }
        self.used_bytes += p.bytes as u64;
        self.queue.push_back(p);
        true
    }

    /// Dequeues the next packet for transmission.
    pub fn dequeue(&mut self) -> Option<Packet> {
        let p = self.queue.pop_front()?;
        self.used_bytes -= p.bytes as u64;
        Some(p)
    }

    /// Bytes currently queued.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Packets currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` if the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Swaps the two most recently enqueued packets (fault-injected
    /// reordering). No-op with fewer than two packets queued.
    pub(crate) fn swap_tail(&mut self) {
        let n = self.queue.len();
        if n >= 2 {
            self.queue.swap(n - 1, n - 2);
        }
    }

    /// Serializes the queue (configuration, accounting, packets
    /// front-to-back) for checkpointing.
    pub fn snap(&self, w: &mut fns_snap::SnapWriter) {
        w.u64(self.capacity_bytes);
        w.u64(self.mark_threshold_bytes);
        w.u64(self.used_bytes);
        w.u64(self.drops);
        w.u64(self.marks);
        w.seq(self.queue.len());
        for p in &self.queue {
            p.snap(w);
        }
    }

    /// Rebuilds a queue captured by [`SwitchQueue::snap`].
    pub fn unsnap(r: &mut fns_snap::SnapReader) -> Result<Self, fns_snap::SnapError> {
        let capacity_bytes = r.u64()?;
        let mark_threshold_bytes = r.u64()?;
        let used_bytes = r.u64()?;
        let drops = r.u64()?;
        let marks = r.u64()?;
        let n = r.seq()?;
        let mut queue = VecDeque::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            queue.push_back(Packet::unsnap(r)?);
        }
        Ok(Self {
            queue,
            capacity_bytes,
            mark_threshold_bytes,
            used_bytes,
            drops,
            marks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;

    fn pkt(bytes: u32) -> Packet {
        Packet::data(FlowId(0), 0, bytes, 0)
    }

    #[test]
    fn marks_above_threshold_only() {
        let mut q = SwitchQueue::new(10_000, 500);
        q.enqueue(pkt(400)); // queue 0 -> not marked
        q.enqueue(pkt(400)); // queue 400 -> not marked
        q.enqueue(pkt(400)); // queue 800 > 500 -> marked
        assert_eq!(q.marks, 1);
        assert!(!q.dequeue().unwrap().ecn_marked);
        assert!(!q.dequeue().unwrap().ecn_marked);
        assert!(q.dequeue().unwrap().ecn_marked);
    }

    #[test]
    fn capacity_drop() {
        let mut q = SwitchQueue::new(1000, 0);
        assert!(q.enqueue(pkt(600)));
        assert!(!q.enqueue(pkt(600)));
        assert_eq!(q.drops, 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn byte_accounting() {
        let mut q = SwitchQueue::new(1000, 1000);
        q.enqueue(pkt(300));
        q.enqueue(pkt(200));
        assert_eq!(q.used_bytes(), 500);
        q.dequeue();
        assert_eq!(q.used_bytes(), 200);
        q.dequeue();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "threshold above capacity")]
    fn bad_threshold() {
        SwitchQueue::new(100, 200);
    }
}
