//! Typed physical addresses and page arithmetic.

/// Base-2 logarithm of the page size (4 KB pages, as on x86-64 and in the
/// paper's Intel VT-d setup).
pub const PAGE_SHIFT: u32 = 12;

/// Page size in bytes.
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

/// A host physical address.
///
/// A newtype rather than a bare `u64` so that physical addresses and IO
/// virtual addresses (`fns_iova::Iova`) can never be confused — the entire
/// point of IO memory protection is that devices see only the latter.
///
/// # Examples
///
/// ```
/// use fns_mem::addr::{PhysAddr, PAGE_SIZE};
///
/// let pa = PhysAddr::new(3 * PAGE_SIZE + 17);
/// assert_eq!(pa.page_base().as_u64(), 3 * PAGE_SIZE);
/// assert_eq!(pa.page_offset(), 17);
/// assert!(!pa.is_page_aligned());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw value.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Raw address value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Address of the start of the containing 4 KB page.
    pub const fn page_base(self) -> Self {
        Self(self.0 & !(PAGE_SIZE - 1))
    }

    /// Byte offset within the containing page.
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Page frame number (address divided by the page size).
    pub const fn pfn(self) -> u64 {
        self.0 >> PAGE_SHIFT
    }

    /// Returns `true` if the address is 4 KB aligned.
    pub const fn is_page_aligned(self) -> bool {
        self.page_offset() == 0
    }

    /// Address `bytes` past this one.
    ///
    /// # Panics
    ///
    /// Panics on overflow (debug and release): a wrapped physical address is
    /// always a model bug.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, bytes: u64) -> Self {
        Self(
            self.0
                .checked_add(bytes)
                .expect("physical address overflow"),
        )
    }

    /// Constructs the address of page frame number `pfn`.
    pub const fn from_pfn(pfn: u64) -> Self {
        Self(pfn << PAGE_SHIFT)
    }
}

impl std::fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PA:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_arithmetic() {
        let pa = PhysAddr::new(0x1234);
        assert_eq!(pa.page_base(), PhysAddr::new(0x1000));
        assert_eq!(pa.page_offset(), 0x234);
        assert_eq!(pa.pfn(), 1);
        assert!(!pa.is_page_aligned());
        assert!(pa.page_base().is_page_aligned());
    }

    #[test]
    fn pfn_roundtrip() {
        for pfn in [0u64, 1, 7, 123_456] {
            assert_eq!(PhysAddr::from_pfn(pfn).pfn(), pfn);
            assert!(PhysAddr::from_pfn(pfn).is_page_aligned());
        }
    }

    #[test]
    fn add_offsets() {
        let pa = PhysAddr::new(0x1000);
        assert_eq!(pa.add(0x10).as_u64(), 0x1010);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn add_overflow_panics() {
        PhysAddr::new(u64::MAX).add(1);
    }

    #[test]
    fn display() {
        assert_eq!(PhysAddr::new(0x1000).to_string(), "PA:0x1000");
    }
}
