//! Memory read-latency model.
//!
//! The paper fits its analytical throughput model (§2.2) with two constants:
//! `l0 = 65 ns` of base per-page DMA cost and `lm = 197 ns` per
//! IOMMU-to-memory read during a page-table walk. `lm` is much higher than an
//! unloaded DRAM access (~90 ns) because the walks contend with the DMA
//! write stream for the memory channels. This module exposes those constants
//! plus a utilization knee so experiments that increase memory pressure
//! (more flows, bidirectional traffic) see slightly inflated walk latency.

use fns_sim::time::Nanos;

/// Memory latency model used by the IOMMU walker and the CPU cost model.
///
/// # Examples
///
/// ```
/// use fns_mem::latency::MemoryModel;
///
/// let mem = MemoryModel::cascade_lake();
/// // An unloaded IOMMU page-walk read costs the paper's fitted 197 ns.
/// assert_eq!(mem.walk_read_ns(0.0), 197);
/// // Under heavy memory-bandwidth utilization the read gets slower.
/// assert!(mem.walk_read_ns(0.9) > 197);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MemoryModel {
    /// Per-read latency of an IOMMU page-table walk read at low load, in ns.
    /// This is the paper's fitted `lm`.
    pub walk_read_base_ns: Nanos,
    /// Unloaded CPU load-to-use latency for a DRAM read, in ns.
    pub cpu_read_ns: Nanos,
    /// Utilization (0..1) above which queueing inflates latency.
    pub knee_utilization: f64,
    /// Multiplier on latency at 100% utilization (linear past the knee).
    pub max_inflation: f64,
    /// Maximum theoretical memory bandwidth, bytes per second.
    pub bandwidth_bytes_per_sec: u64,
}

impl MemoryModel {
    /// Parameters for the paper's default testbed: 4-socket Cascade Lake,
    /// 2 DDR4 channels, 46.9 GB/s theoretical bandwidth.
    pub fn cascade_lake() -> Self {
        Self {
            walk_read_base_ns: 197,
            cpu_read_ns: 90,
            knee_utilization: 0.6,
            max_inflation: 2.5,
            bandwidth_bytes_per_sec: 46_900_000_000,
        }
    }

    /// Parameters for the Ice Lake servers used in the paper's Rx/Tx
    /// interference experiment (§4.1, Figure 10): 8 DDR4-3200 channels per
    /// socket, so memory contention effects are milder.
    pub fn ice_lake() -> Self {
        Self {
            walk_read_base_ns: 197,
            cpu_read_ns: 85,
            knee_utilization: 0.75,
            max_inflation: 1.8,
            bandwidth_bytes_per_sec: 204_800_000_000,
        }
    }

    /// Inflation factor at the given bandwidth utilization (0..1, clamped).
    fn inflation(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        if u <= self.knee_utilization {
            1.0
        } else {
            let t = (u - self.knee_utilization) / (1.0 - self.knee_utilization);
            1.0 + t * (self.max_inflation - 1.0)
        }
    }

    /// Latency of one IOMMU page-walk memory read at the given memory
    /// bandwidth utilization.
    pub fn walk_read_ns(&self, utilization: f64) -> Nanos {
        (self.walk_read_base_ns as f64 * self.inflation(utilization)).round() as Nanos
    }

    /// Latency of one CPU DRAM read at the given utilization.
    pub fn cpu_read_latency_ns(&self, utilization: f64) -> Nanos {
        (self.cpu_read_ns as f64 * self.inflation(utilization)).round() as Nanos
    }

    /// Bandwidth utilization implied by moving `bytes_per_sec`.
    pub fn utilization(&self, bytes_per_sec: f64) -> f64 {
        (bytes_per_sec / self.bandwidth_bytes_per_sec as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_latency_is_fitted_lm() {
        let m = MemoryModel::cascade_lake();
        assert_eq!(m.walk_read_ns(0.0), 197);
        assert_eq!(m.walk_read_ns(0.6), 197);
    }

    #[test]
    fn latency_inflates_past_knee() {
        let m = MemoryModel::cascade_lake();
        let l1 = m.walk_read_ns(0.7);
        let l2 = m.walk_read_ns(0.9);
        let l3 = m.walk_read_ns(1.0);
        assert!(l1 > 197);
        assert!(l2 > l1);
        assert_eq!(l3, (197.0 * 2.5_f64).round() as u64);
    }

    #[test]
    fn utilization_clamped() {
        let m = MemoryModel::cascade_lake();
        assert_eq!(m.walk_read_ns(7.0), m.walk_read_ns(1.0));
        assert_eq!(m.utilization(1e15), 1.0);
        assert_eq!(m.utilization(0.0), 0.0);
    }

    #[test]
    fn cpu_read_scales_too() {
        let m = MemoryModel::cascade_lake();
        assert_eq!(m.cpu_read_latency_ns(0.0), 90);
        assert!(m.cpu_read_latency_ns(1.0) > 200);
    }

    #[test]
    fn ice_lake_has_more_bandwidth() {
        let c = MemoryModel::cascade_lake();
        let i = MemoryModel::ice_lake();
        assert!(i.bandwidth_bytes_per_sec > c.bandwidth_bytes_per_sec);
        // Same traffic loads Ice Lake proportionally less.
        assert!(i.utilization(40e9) < c.utilization(40e9));
    }
}
