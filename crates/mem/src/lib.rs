//! Host physical memory substrate: addresses, frame allocation, latency.
//!
//! The paper's testbed is a Cascade Lake server whose DRAM serves three
//! consumers relevant to the experiments: packet buffers (DMA targets), the
//! IO page table (walked by the IOMMU on IOTLB misses), and the CPU's own
//! loads. This crate models the parts the reproduction needs:
//!
//! * [`addr`] — typed physical addresses and page/frame arithmetic,
//! * [`frames`] — a physical frame allocator with double-free detection,
//! * [`latency`] — the memory read-latency model (the paper's fitted
//!   `lm ≈ 197 ns` per IOMMU page-walk read) including a contention knee.

pub mod addr;
pub mod frames;
pub mod latency;

pub use addr::{PhysAddr, PAGE_SHIFT, PAGE_SIZE};
pub use frames::{FrameAllocator, FrameError};
pub use latency::MemoryModel;
