//! Physical frame allocator.
//!
//! Backs both packet buffers (the frames the NIC driver hands to the IOMMU
//! driver for Rx descriptors) and IO page-table pages. A free list keeps
//! allocation O(1); an allocation bitmap catches double frees and frees of
//! never-allocated frames, which in the real kernel would be memory
//! corruption.

use fns_snap::{SnapError, SnapReader, SnapWriter};

use crate::addr::{PhysAddr, PAGE_SIZE};

/// Errors returned by [`FrameAllocator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// No free frames remain.
    OutOfMemory,
    /// The frame was not currently allocated (double free or wild free).
    NotAllocated(PhysAddr),
    /// The address is not page aligned.
    Unaligned(PhysAddr),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::OutOfMemory => write!(f, "out of physical frames"),
            FrameError::NotAllocated(pa) => write!(f, "frame {pa} is not allocated"),
            FrameError::Unaligned(pa) => write!(f, "address {pa} is not page aligned"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A 4 KB physical frame allocator over a contiguous physical range.
///
/// Never-allocated frames are represented by a watermark (`next_pfn`), so
/// construction is O(1) in the pool size instead of materializing a
/// multi-megabyte free list; frames that have been freed sit on a LIFO
/// recycle stack. Allocation order is identical to the historical
/// explicit-free-list implementation: fresh frames come out lowest-first,
/// recycled frames most-recently-freed-first. Allocation state lives in a
/// bitmap (one bit per frame) rather than a hash set, so double-free and
/// wild-free detection is a mask test with no hashing on the hot path.
///
/// # Examples
///
/// ```
/// use fns_mem::frames::FrameAllocator;
///
/// let mut fa = FrameAllocator::new(16);
/// let f = fa.alloc().unwrap();
/// assert!(f.is_page_aligned());
/// fa.free(f).unwrap();
/// assert!(fa.free(f).is_err()); // double free detected
/// ```
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    /// Freed frames, reallocated LIFO.
    recycled: Vec<PhysAddr>,
    /// Lowest pfn that has never been handed out.
    next_pfn: u64,
    /// One bit per frame (bit index == pfn); set while allocated.
    bitmap: Vec<u64>,
    in_use: usize,
    total: usize,
    peak_allocated: usize,
    alloc_count: u64,
    free_count: u64,
}

impl FrameAllocator {
    /// Creates an allocator managing `frames` 4 KB frames, starting at
    /// physical address `PAGE_SIZE` (frame 0 is reserved as a null sentinel,
    /// matching the convention that physical address 0 is never a valid DMA
    /// target).
    pub fn new(frames: usize) -> Self {
        Self {
            recycled: Vec::new(),
            next_pfn: 1,
            bitmap: vec![0u64; (frames + 1).div_ceil(64)],
            in_use: 0,
            total: frames,
            peak_allocated: 0,
            alloc_count: 0,
            free_count: 0,
        }
    }

    /// Rewinds to the freshly-constructed state (all frames free, counters
    /// zeroed) while keeping the bitmap and recycle-stack storage allocated —
    /// the arena-reuse hook for back-to-back simulation runs.
    pub fn reset(&mut self, frames: usize) {
        let words = (frames + 1).div_ceil(64);
        self.bitmap.clear();
        self.bitmap.resize(words, 0);
        self.recycled.clear();
        self.next_pfn = 1;
        self.in_use = 0;
        self.total = frames;
        self.peak_allocated = 0;
        self.alloc_count = 0;
        self.free_count = 0;
    }

    #[inline]
    fn bit_set(&mut self, pfn: u64) {
        self.bitmap[(pfn / 64) as usize] |= 1u64 << (pfn % 64);
    }

    #[inline]
    fn bit_test(&self, pfn: u64) -> bool {
        pfn <= self.total as u64 && self.bitmap[(pfn / 64) as usize] & (1u64 << (pfn % 64)) != 0
    }

    #[inline]
    fn bit_clear(&mut self, pfn: u64) {
        self.bitmap[(pfn / 64) as usize] &= !(1u64 << (pfn % 64));
    }

    /// Allocates one frame.
    pub fn alloc(&mut self) -> Result<PhysAddr, FrameError> {
        let pa = match self.recycled.pop() {
            Some(pa) => pa,
            None => {
                if self.next_pfn > self.total as u64 {
                    return Err(FrameError::OutOfMemory);
                }
                let pa = PhysAddr::from_pfn(self.next_pfn);
                self.next_pfn += 1;
                pa
            }
        };
        self.bit_set(pa.pfn());
        self.in_use += 1;
        self.peak_allocated = self.peak_allocated.max(self.in_use);
        self.alloc_count += 1;
        Ok(pa)
    }

    /// Allocates one frame through a fault plane: the plane may force an
    /// `OutOfMemory` result even while frames remain, modelling transient
    /// memory pressure.
    pub fn alloc_with(
        &mut self,
        faults: &mut fns_faults::FaultPlane,
    ) -> Result<PhysAddr, FrameError> {
        if faults.roll(fns_faults::FaultKind::FrameExhaustion) {
            return Err(FrameError::OutOfMemory);
        }
        self.alloc()
    }

    /// Frees a previously allocated frame.
    pub fn free(&mut self, pa: PhysAddr) -> Result<(), FrameError> {
        if !pa.is_page_aligned() {
            return Err(FrameError::Unaligned(pa));
        }
        if !self.bit_test(pa.pfn()) {
            return Err(FrameError::NotAllocated(pa));
        }
        self.bit_clear(pa.pfn());
        self.in_use -= 1;
        self.free_count += 1;
        self.recycled.push(pa);
        Ok(())
    }

    /// Returns `true` if `pa`'s frame is currently allocated.
    pub fn is_allocated(&self, pa: PhysAddr) -> bool {
        self.bit_test(pa.pfn())
    }

    /// Frames currently allocated.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Frames currently free.
    pub fn available(&self) -> usize {
        self.total - (self.next_pfn as usize - 1) + self.recycled.len()
    }

    /// Total frames managed.
    pub fn total(&self) -> usize {
        self.total
    }

    /// High-water mark of simultaneously allocated frames.
    pub fn peak_in_use(&self) -> usize {
        self.peak_allocated
    }

    /// Lifetime (alloc, free) operation counts.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.alloc_count, self.free_count)
    }

    /// Total bytes managed.
    pub fn total_bytes(&self) -> u64 {
        self.total as u64 * PAGE_SIZE
    }

    /// Serializes the full allocator state for checkpointing. The recycle
    /// stack travels verbatim (its LIFO order decides future allocations).
    pub fn snap(&self, w: &mut SnapWriter) {
        w.seq(self.recycled.len());
        for pa in &self.recycled {
            w.u64(pa.as_u64());
        }
        w.u64(self.next_pfn);
        w.u64_slice(&self.bitmap);
        w.usize(self.in_use);
        w.usize(self.total);
        w.usize(self.peak_allocated);
        w.u64(self.alloc_count);
        w.u64(self.free_count);
    }

    /// Rebuilds an allocator captured by [`FrameAllocator::snap`].
    pub fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        let n = r.seq()?;
        let mut recycled = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            recycled.push(PhysAddr::new(r.u64()?));
        }
        Ok(Self {
            recycled,
            next_pfn: r.u64()?,
            bitmap: r.u64_vec()?,
            in_use: r.usize()?,
            total: r.usize()?,
            peak_allocated: r.usize()?,
            alloc_count: r.u64()?,
            free_count: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut fa = FrameAllocator::new(4);
        let a = fa.alloc().unwrap();
        let b = fa.alloc().unwrap();
        assert_ne!(a, b);
        assert_eq!(fa.in_use(), 2);
        fa.free(a).unwrap();
        fa.free(b).unwrap();
        assert_eq!(fa.in_use(), 0);
        assert_eq!(fa.available(), 4);
    }

    #[test]
    fn exhaustion() {
        let mut fa = FrameAllocator::new(2);
        fa.alloc().unwrap();
        fa.alloc().unwrap();
        assert_eq!(fa.alloc(), Err(FrameError::OutOfMemory));
    }

    #[test]
    fn double_free_detected() {
        let mut fa = FrameAllocator::new(2);
        let a = fa.alloc().unwrap();
        fa.free(a).unwrap();
        assert_eq!(fa.free(a), Err(FrameError::NotAllocated(a)));
    }

    #[test]
    fn wild_free_detected() {
        let mut fa = FrameAllocator::new(2);
        assert!(matches!(
            fa.free(PhysAddr::from_pfn(99)),
            Err(FrameError::NotAllocated(_))
        ));
        assert_eq!(
            fa.free(PhysAddr::new(5)),
            Err(FrameError::Unaligned(PhysAddr::new(5)))
        );
    }

    #[test]
    fn frame_zero_reserved() {
        let mut fa = FrameAllocator::new(8);
        for _ in 0..8 {
            let f = fa.alloc().unwrap();
            assert!(f.pfn() >= 1, "frame 0 must stay reserved");
        }
    }

    #[test]
    fn peak_tracking() {
        let mut fa = FrameAllocator::new(8);
        let a = fa.alloc().unwrap();
        let b = fa.alloc().unwrap();
        let c = fa.alloc().unwrap();
        fa.free(b).unwrap();
        fa.free(c).unwrap();
        fa.free(a).unwrap();
        assert_eq!(fa.peak_in_use(), 3);
        assert_eq!(fa.op_counts(), (3, 3));
    }

    #[test]
    fn reuse_after_free() {
        let mut fa = FrameAllocator::new(1);
        let a = fa.alloc().unwrap();
        fa.free(a).unwrap();
        let b = fa.alloc().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn injected_exhaustion_fails_without_consuming_frames() {
        use fns_faults::{FaultConfig, FaultKind, FaultPlane};
        use fns_sim::rng::SimRng;

        let cfg = FaultConfig::disabled().with_every(FaultKind::FrameExhaustion, 2);
        let mut plane = FaultPlane::new(cfg, SimRng::seed(1));
        let mut fa = FrameAllocator::new(4);
        assert!(fa.alloc_with(&mut plane).is_ok());
        assert_eq!(fa.alloc_with(&mut plane), Err(FrameError::OutOfMemory));
        // The injected failure must not leak a frame.
        assert_eq!(fa.in_use(), 1);
        assert_eq!(fa.available(), 3);
        assert_eq!(plane.stats().injected_of(FaultKind::FrameExhaustion), 1);
    }

    #[test]
    fn total_bytes() {
        let fa = FrameAllocator::new(256);
        assert_eq!(fa.total_bytes(), 1 << 20);
        assert_eq!(fa.total(), 256);
    }
}
