//! Deterministic fault injection for the F&S simulation.
//!
//! The paper's claim is a *safety* property — no device access to a page
//! after its IOVA is unmapped — and a safety property is only interesting
//! under adversity. This crate provides the adversity: a seedable
//! [`FaultPlane`] that components consult at well-defined injection sites
//! (ring replenish, invalidation submission, allocator calls, switch
//! enqueue, ...) to decide whether to surface a fault there.
//!
//! Design constraints:
//!
//! * **Deterministic.** All randomness comes from a [`SimRng`] forked from
//!   the experiment seed, so a fault mix replays bit-identically.
//! * **Non-perturbing.** A plane owns its own RNG stream; enabling faults
//!   never consumes draws from the workload generators, and a disabled
//!   plane consumes no draws at all — the baseline trajectory is unchanged.
//! * **Accountable.** Every injection is counted per [`FaultKind`] and
//!   emitted through the telemetry recorder (the `fault` trace category),
//!   so tests can reconcile observed recoveries against what was actually
//!   injected. `RunMetrics::fault_log` is a filtered view of that trace —
//!   see [`fault_log_from`].

use fns_sim::rng::SimRng;
use fns_trace::{Trace, TraceData, TraceHandle};

/// The kinds of fault the plane can inject, one per injection site class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// NIC Rx ring overrun: a replenished descriptor is refused as if the
    /// producer index had caught the consumer.
    RingOverrun,
    /// Rx descriptor preparation fails outright (driver out of descriptors).
    DescriptorExhaustion,
    /// Device-side DMA probe of a recently unmapped IOVA — the translation
    /// *must* fault in strict-safe modes; this is the safety invariant
    /// under test.
    TranslationFault,
    /// IOMMU invalidation-queue stall: the sync completion times out and
    /// the driver must retry with backoff.
    InvalidationTimeout,
    /// Packet silently dropped on the wire.
    PacketDrop,
    /// Packet delivered with a payload corruption (fails checksum at the
    /// receiver and is discarded there).
    PacketCorrupt,
    /// Packet reordered past its successor in the switch queue.
    PacketReorder,
    /// Packet duplicated by the network.
    PacketDuplicate,
    /// Frame allocator reports out-of-memory.
    FrameExhaustion,
    /// IOVA allocator reports address-space exhaustion.
    IovaExhaustion,
}

impl FaultKind {
    /// Number of fault kinds (array dimension for per-kind tables).
    pub const COUNT: usize = 10;

    /// All kinds, in `index()` order.
    pub const ALL: [FaultKind; FaultKind::COUNT] = [
        FaultKind::RingOverrun,
        FaultKind::DescriptorExhaustion,
        FaultKind::TranslationFault,
        FaultKind::InvalidationTimeout,
        FaultKind::PacketDrop,
        FaultKind::PacketCorrupt,
        FaultKind::PacketReorder,
        FaultKind::PacketDuplicate,
        FaultKind::FrameExhaustion,
        FaultKind::IovaExhaustion,
    ];

    /// Stable index into per-kind tables.
    pub fn index(self) -> usize {
        match self {
            FaultKind::RingOverrun => 0,
            FaultKind::DescriptorExhaustion => 1,
            FaultKind::TranslationFault => 2,
            FaultKind::InvalidationTimeout => 3,
            FaultKind::PacketDrop => 4,
            FaultKind::PacketCorrupt => 5,
            FaultKind::PacketReorder => 6,
            FaultKind::PacketDuplicate => 7,
            FaultKind::FrameExhaustion => 8,
            FaultKind::IovaExhaustion => 9,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::RingOverrun => "ring-overrun",
            FaultKind::DescriptorExhaustion => "descriptor-exhaustion",
            FaultKind::TranslationFault => "translation-fault",
            FaultKind::InvalidationTimeout => "invalidation-timeout",
            FaultKind::PacketDrop => "packet-drop",
            FaultKind::PacketCorrupt => "packet-corrupt",
            FaultKind::PacketReorder => "packet-reorder",
            FaultKind::PacketDuplicate => "packet-duplicate",
            FaultKind::FrameExhaustion => "frame-exhaustion",
            FaultKind::IovaExhaustion => "iova-exhaustion",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Static description of which faults to inject and how often.
///
/// `Copy` on purpose: it rides inside `SimConfig`, which experiment sweeps
/// pass by value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Per-kind probability of injection at each site visit, in `[0, 1]`.
    pub probability: [f64; FaultKind::COUNT],
    /// Per-kind scheduled trigger: inject deterministically on every n-th
    /// site visit (0 disables the schedule). Combines with `probability`
    /// as an OR.
    pub every: [u64; FaultKind::COUNT],
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

impl FaultConfig {
    /// No faults at all (the default for every stock experiment config).
    pub fn disabled() -> Self {
        Self {
            probability: [0.0; FaultKind::COUNT],
            every: [0; FaultKind::COUNT],
        }
    }

    /// Same injection probability at every site class.
    pub fn uniform(p: f64) -> Self {
        Self {
            probability: [p; FaultKind::COUNT],
            every: [0; FaultKind::COUNT],
        }
    }

    /// Builder: sets the probability for one kind.
    pub fn with(mut self, kind: FaultKind, p: f64) -> Self {
        self.probability[kind.index()] = p;
        self
    }

    /// Builder: schedules a deterministic injection every `n`-th visit of
    /// `kind`'s sites (0 disables).
    pub fn with_every(mut self, kind: FaultKind, n: u64) -> Self {
        self.every[kind.index()] = n;
        self
    }

    /// Whether any kind can ever fire.
    pub fn any_enabled(&self) -> bool {
        self.probability.iter().any(|&p| p > 0.0) || self.every.iter().any(|&n| n > 0)
    }
}

/// One injected fault, as recorded in the plane's log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    pub kind: FaultKind,
    /// 1-based visit count of `kind`'s sites at the moment of injection.
    pub visit: u64,
}

/// Per-kind injection/recovery counters plus cross-cutting recovery stats,
/// merged into `RunMetrics` at collection time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Faults injected, by `FaultKind::index()`.
    pub injected: [u64; FaultKind::COUNT],
    /// Faults recovered from (retry succeeded, packet retransmitted,
    /// descriptor recycled, ...), by `FaultKind::index()`.
    pub recovered: [u64; FaultKind::COUNT],
    /// Invalidation-queue retries performed under backoff.
    pub invalidation_retries: u64,
    /// Batched range invalidations degraded to per-page replay.
    pub batch_fallbacks: u64,
    /// Descriptors recycled after a ring overrun.
    pub descriptor_recycles: u64,
    /// Stale-DMA probes correctly blocked by the IOMMU (safety held).
    pub stale_dma_blocked: u64,
    /// Stale-DMA probes that *translated* — a safety violation.
    pub stale_dma_leaked: u64,
}

impl FaultStats {
    /// Injected count for one kind.
    pub fn injected_of(&self, kind: FaultKind) -> u64 {
        self.injected[kind.index()]
    }

    /// Recovered count for one kind.
    pub fn recovered_of(&self, kind: FaultKind) -> u64 {
        self.recovered[kind.index()]
    }

    /// Total injections across all kinds.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Total recoveries across all kinds.
    pub fn total_recovered(&self) -> u64 {
        self.recovered.iter().sum()
    }

    /// Element-wise sum of two stat blocks (driver plane + net plane).
    pub fn merge(&self, other: &FaultStats) -> FaultStats {
        let mut out = *self;
        for i in 0..FaultKind::COUNT {
            out.injected[i] += other.injected[i];
            out.recovered[i] += other.recovered[i];
        }
        out.invalidation_retries += other.invalidation_retries;
        out.batch_fallbacks += other.batch_fallbacks;
        out.descriptor_recycles += other.descriptor_recycles;
        out.stale_dma_blocked += other.stale_dma_blocked;
        out.stale_dma_leaked += other.stale_dma_leaked;
        out
    }
}

/// Minimum recorder capacity guaranteed for fault events when faults are
/// enabled (the pre-telemetry side log kept this many records; the sim
/// sizes the shared trace ring to at least this so the derived fault log
/// does not shrink).
pub const LOG_CAP: usize = 65_536;

/// Derives the chronological fault log from a drained trace — the filtered
/// view backing `RunMetrics::fault_log`. Fault events from every plane
/// (driver-side and wire-side) land in one shared ring, so the result is
/// interleaved in injection order.
pub fn fault_log_from(trace: &Trace) -> Vec<FaultRecord> {
    trace
        .events
        .iter()
        .filter_map(|ev| match ev.data {
            TraceData::FaultInject { kind, visit } => Some(FaultRecord {
                kind: FaultKind::ALL[kind as usize],
                visit,
            }),
            _ => None,
        })
        .collect()
}

/// A live fault-injection plane: configuration + RNG stream + accounting.
///
/// Components hold a plane (or borrow one) and call [`FaultPlane::roll`] at
/// each injection site. A `roll` that returns `true` means "surface the
/// fault here"; the caller then goes down its error path and, once it has
/// recovered, reports back via [`FaultPlane::note_recovery`].
#[derive(Debug, Clone)]
pub struct FaultPlane {
    cfg: FaultConfig,
    rng: SimRng,
    /// Per-kind site-visit counters (drives the `every` schedule).
    visits: [u64; FaultKind::COUNT],
    stats: FaultStats,
    /// Telemetry sink; injections and recoveries are emitted here under
    /// the `fault` category.
    trace: TraceHandle,
    enabled: bool,
}

impl FaultPlane {
    /// A plane that never fires and never consumes RNG draws.
    pub fn disabled() -> Self {
        Self::new(FaultConfig::disabled(), SimRng::seed(0))
    }

    /// Builds a plane from a config and a dedicated RNG stream (fork one
    /// from the experiment seed; do not share the workload stream).
    pub fn new(cfg: FaultConfig, rng: SimRng) -> Self {
        Self {
            enabled: cfg.any_enabled(),
            cfg,
            rng,
            visits: [0; FaultKind::COUNT],
            stats: FaultStats::default(),
            trace: TraceHandle::default(),
        }
    }

    /// Convenience: fork the plane's stream directly from a seed and salt.
    pub fn from_seed(cfg: FaultConfig, seed: u64, salt: u64) -> Self {
        Self::new(cfg, SimRng::seed(seed).fork(salt))
    }

    /// Whether any fault kind can ever fire.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Attaches the telemetry recorder this plane emits fault events into.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Visits an injection site: returns `true` when the caller should
    /// surface a fault of `kind` here. Counts and logs the injection.
    pub fn roll(&mut self, kind: FaultKind) -> bool {
        if !self.enabled {
            return false;
        }
        let i = kind.index();
        let p = self.cfg.probability[i];
        let every = self.cfg.every[i];
        if p <= 0.0 && every == 0 {
            return false;
        }
        self.visits[i] += 1;
        let scheduled = every > 0 && self.visits[i].is_multiple_of(every);
        // Consume a draw only for probabilistic kinds, so a purely
        // scheduled mix stays draw-free and maximally reproducible.
        let random = p > 0.0 && self.rng.chance(p);
        if !(scheduled || random) {
            return false;
        }
        self.stats.injected[i] += 1;
        self.trace.emit(TraceData::FaultInject {
            kind: i as u8,
            visit: self.visits[i],
        });
        true
    }

    /// Reports that a previously injected fault of `kind` was recovered
    /// from (retried successfully, retransmitted, recycled, ...).
    pub fn note_recovery(&mut self, kind: FaultKind) {
        self.stats.recovered[kind.index()] += 1;
        self.trace.emit(TraceData::FaultRecover {
            kind: kind.index() as u8,
        });
    }

    /// Accounts `n` invalidation-queue retries.
    pub fn note_invalidation_retries(&mut self, n: u64) {
        self.stats.invalidation_retries += n;
    }

    /// Accounts one batched→per-page invalidation fallback.
    pub fn note_batch_fallback(&mut self) {
        self.stats.batch_fallbacks += 1;
    }

    /// Accounts one descriptor recycle after ring overrun.
    pub fn note_descriptor_recycle(&mut self) {
        self.stats.descriptor_recycles += 1;
    }

    /// Accounts one stale-DMA probe outcome. `leaked = true` means the
    /// translation of an unmapped IOVA *succeeded* — a safety violation.
    pub fn note_stale_probe(&mut self, leaked: bool) {
        if leaked {
            self.stats.stale_dma_leaked += 1;
        } else {
            self.stats.stale_dma_blocked += 1;
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Serializes the mutable plane state (RNG stream position, visit
    /// counters, stats) for checkpointing. The config and trace handle are
    /// *not* captured: restore supplies them from the run configuration, so
    /// a snapshot stays valid across trace-sink reattachment.
    pub fn snap(&self, w: &mut fns_snap::SnapWriter) {
        for word in self.rng.state() {
            w.u64(word);
        }
        for v in self.visits {
            w.u64(v);
        }
        for v in self.stats.injected {
            w.u64(v);
        }
        for v in self.stats.recovered {
            w.u64(v);
        }
        w.u64(self.stats.invalidation_retries);
        w.u64(self.stats.batch_fallbacks);
        w.u64(self.stats.descriptor_recycles);
        w.u64(self.stats.stale_dma_blocked);
        w.u64(self.stats.stale_dma_leaked);
    }

    /// Rebuilds a plane captured by [`FaultPlane::snap`], reattaching the
    /// caller's config (the trace sink is attached separately via
    /// [`FaultPlane::set_trace`]).
    pub fn unsnap(
        cfg: FaultConfig,
        r: &mut fns_snap::SnapReader,
    ) -> Result<Self, fns_snap::SnapError> {
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.u64()?;
        }
        let mut visits = [0u64; FaultKind::COUNT];
        for v in &mut visits {
            *v = r.u64()?;
        }
        let mut stats = FaultStats::default();
        for v in &mut stats.injected {
            *v = r.u64()?;
        }
        for v in &mut stats.recovered {
            *v = r.u64()?;
        }
        stats.invalidation_retries = r.u64()?;
        stats.batch_fallbacks = r.u64()?;
        stats.descriptor_recycles = r.u64()?;
        stats.stale_dma_blocked = r.u64()?;
        stats.stale_dma_leaked = r.u64()?;
        Ok(Self {
            enabled: cfg.any_enabled(),
            cfg,
            rng: SimRng::from_state(state),
            visits,
            stats,
            trace: TraceHandle::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fns_trace::TraceCategory;

    /// A recording handle scoped to fault events, as the sim attaches one.
    fn fault_trace() -> TraceHandle {
        TraceHandle::recording(TraceCategory::Fault.bit(), LOG_CAP)
    }

    #[test]
    fn disabled_plane_never_fires_and_consumes_no_draws() {
        let mut p = FaultPlane::disabled();
        let t = fault_trace();
        p.set_trace(t.clone());
        for kind in FaultKind::ALL {
            for _ in 0..100 {
                assert!(!p.roll(kind));
            }
        }
        assert_eq!(p.stats().total_injected(), 0);
        assert!(fault_log_from(&t.drain()).is_empty());
    }

    #[test]
    fn zero_probability_kind_consumes_no_draws() {
        // Two planes with the same stream; only PacketDrop enabled. Rolling
        // a disabled kind in between must not perturb the enabled stream.
        let cfg = FaultConfig::disabled().with(FaultKind::PacketDrop, 0.5);
        let mut a = FaultPlane::new(cfg, SimRng::seed(7));
        let mut b = FaultPlane::new(cfg, SimRng::seed(7));
        let mut outcomes_a = Vec::new();
        let mut outcomes_b = Vec::new();
        for _ in 0..64 {
            outcomes_a.push(a.roll(FaultKind::PacketDrop));
            b.roll(FaultKind::RingOverrun); // disabled: must be draw-free
            outcomes_b.push(b.roll(FaultKind::PacketDrop));
        }
        assert_eq!(outcomes_a, outcomes_b);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = FaultConfig::uniform(0.3);
        let (ta, tb) = (fault_trace(), fault_trace());
        let mut a = FaultPlane::new(cfg, SimRng::seed(42));
        let mut b = FaultPlane::new(cfg, SimRng::seed(42));
        a.set_trace(ta.clone());
        b.set_trace(tb.clone());
        for _ in 0..500 {
            for kind in FaultKind::ALL {
                assert_eq!(a.roll(kind), b.roll(kind));
            }
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(fault_log_from(&ta.drain()), fault_log_from(&tb.drain()));
    }

    #[test]
    fn scheduled_trigger_fires_exactly_every_n() {
        let cfg = FaultConfig::disabled().with_every(FaultKind::InvalidationTimeout, 5);
        let mut p = FaultPlane::new(cfg, SimRng::seed(1));
        let fired: Vec<bool> = (0..20)
            .map(|_| p.roll(FaultKind::InvalidationTimeout))
            .collect();
        let expect: Vec<bool> = (1..=20).map(|i| i % 5 == 0).collect();
        assert_eq!(fired, expect);
        assert_eq!(p.stats().injected_of(FaultKind::InvalidationTimeout), 4);
    }

    #[test]
    fn probability_roughly_respected() {
        let cfg = FaultConfig::disabled().with(FaultKind::PacketDrop, 0.25);
        let mut p = FaultPlane::new(cfg, SimRng::seed(9));
        let n = 20_000;
        let hits = (0..n).filter(|_| p.roll(FaultKind::PacketDrop)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn log_reconciles_with_counters() {
        let cfg = FaultConfig::uniform(0.2).with_every(FaultKind::RingOverrun, 3);
        let t = fault_trace();
        let mut p = FaultPlane::new(cfg, SimRng::seed(5));
        p.set_trace(t.clone());
        for _ in 0..300 {
            for kind in FaultKind::ALL {
                p.roll(kind);
            }
        }
        let stats = p.stats();
        let log = fault_log_from(&t.drain());
        for kind in FaultKind::ALL {
            let logged = log.iter().filter(|r| r.kind == kind).count() as u64;
            assert_eq!(logged, stats.injected_of(kind), "{kind}");
        }
        assert!(stats.total_injected() > 0);
    }

    #[test]
    fn recoveries_are_emitted_as_trace_events() {
        let t = fault_trace();
        let mut p = FaultPlane::new(FaultConfig::uniform(1.0), SimRng::seed(3));
        p.set_trace(t.clone());
        assert!(p.roll(FaultKind::RingOverrun));
        p.note_recovery(FaultKind::RingOverrun);
        let trace = t.drain();
        assert_eq!(trace.len(), 2);
        assert_eq!(
            trace.events[0].data,
            TraceData::FaultInject {
                kind: FaultKind::RingOverrun.index() as u8,
                visit: 1
            }
        );
        assert_eq!(
            trace.events[1].data,
            TraceData::FaultRecover {
                kind: FaultKind::RingOverrun.index() as u8
            }
        );
        // The derived log only contains the injection.
        assert_eq!(fault_log_from(&trace).len(), 1);
    }

    #[test]
    fn merge_sums_elementwise() {
        let mut a = FaultStats::default();
        let mut b = FaultStats::default();
        a.injected[0] = 3;
        b.injected[0] = 4;
        a.batch_fallbacks = 1;
        b.stale_dma_blocked = 2;
        let m = a.merge(&b);
        assert_eq!(m.injected[0], 7);
        assert_eq!(m.batch_fallbacks, 1);
        assert_eq!(m.stale_dma_blocked, 2);
    }
}
