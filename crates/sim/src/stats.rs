//! Measurement primitives: histograms, running means, reuse distances.
//!
//! These stand in for the paper's measurement tooling: PCM hardware counters
//! (plain counters on each model), netperf latency percentiles
//! ([`Histogram`]), and the PTcache-L3 locality analysis of Figures 2e/3e/7e/8e
//! ([`ReuseDistance`]).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use fns_snap::{SnapError, SnapReader, SnapWriter};

/// A log-linear histogram for latency-like values, HDR-histogram style.
///
/// Values are bucketed into octaves each split into 32 linear sub-buckets,
/// giving a worst-case relative quantile error of ~3%. This is the same
/// trade-off netperf-style tools make and is plenty for reproducing the
/// paper's P50–P99.99 whisker plot (Figure 9).
///
/// # Examples
///
/// ```
/// use fns_sim::stats::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p50 = h.percentile(50.0);
/// assert!((480..=530).contains(&p50));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

const SUB_BUCKETS: u32 = 32;
const SUB_BITS: u32 = 5; // log2(SUB_BUCKETS)

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            // 64 octaves x 32 sub-buckets covers all of u64.
            buckets: vec![0; (64 * SUB_BUCKETS) as usize],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(v: u64) -> usize {
        if v < SUB_BUCKETS as u64 {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros(); // >= SUB_BITS here
        let octave = msb - SUB_BITS + 1;
        let sub = (v >> (msb - SUB_BITS)) & (SUB_BUCKETS as u64 - 1);
        (octave * SUB_BUCKETS) as usize + sub as usize
    }

    /// Upper bound of the bucket with the given index (the value reported
    /// for quantiles falling in that bucket).
    fn bucket_upper(idx: usize) -> u64 {
        let idx = idx as u64;
        let octave = idx >> SUB_BITS;
        let sub = idx & (SUB_BUCKETS as u64 - 1);
        if octave == 0 {
            return sub;
        }
        let shift = octave - 1;
        ((SUB_BUCKETS as u64 + sub + 1) << shift) - 1
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean of the recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact minimum recorded value (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate value at percentile `p` (0–100), within ~3% relative
    /// error. Returns 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Serializes the full histogram state for checkpointing.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.u64_slice(&self.buckets);
        w.u64(self.count);
        w.u128(self.sum);
        w.u64(self.min);
        w.u64(self.max);
    }

    /// Rebuilds a histogram captured by [`Histogram::snap`].
    pub fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(Self {
            buckets: r.u64_vec()?,
            count: r.u64()?,
            sum: r.u128()?,
            min: r.u64()?,
            max: r.u64()?,
        })
    }
}

/// Running mean/total tracker for per-page rates (e.g. misses per page).
///
/// # Examples
///
/// ```
/// use fns_sim::stats::MeanTracker;
///
/// let mut m = MeanTracker::new();
/// m.add(2.0);
/// m.add(4.0);
/// assert_eq!(m.mean(), 3.0);
/// assert_eq!(m.count(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanTracker {
    sum: f64,
    count: u64,
}

impl MeanTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn add(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
    }

    /// Mean of all observations (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Serializes the tracker for checkpointing (sum travels as IEEE bits).
    pub fn snap(&self, w: &mut SnapWriter) {
        w.f64(self.sum);
        w.u64(self.count);
    }

    /// Rebuilds a tracker captured by [`MeanTracker::snap`].
    pub fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(Self {
            sum: r.f64()?,
            count: r.u64()?,
        })
    }
}

/// Reuse-distance tracker over an access stream of keys.
///
/// For each access, records the number of *distinct other keys* touched since
/// the previous access to the same key (`None` on first access). This is
/// exactly the Y axis of the paper's locality panels (Figures 2e, 3e, 7e,
/// 8e), where keys are PTcache-L3 entries (i.e. PT-L4 page addresses) touched
/// by successive IOVA allocations: an access whose reuse distance exceeds the
/// cache size is a likely capacity miss.
///
/// Uses the classic Fenwick-tree (binary indexed tree) algorithm: O(log n)
/// per access.
///
/// # Examples
///
/// ```
/// use fns_sim::stats::ReuseDistance;
///
/// let mut rd = ReuseDistance::new();
/// for k in [1u64, 2, 3, 1] {
///     rd.access(k);
/// }
/// // Key 1 is re-accessed after 2 distinct other keys (2 and 3).
/// assert_eq!(rd.distances(), &[None, None, None, Some(2)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReuseDistance {
    // Fenwick tree over access positions; tree[i] counts "most recent
    // occurrence" markers. 1-based internally. `markers` mirrors the raw
    // per-position values so the tree can be rebuilt when it grows (a Fenwick
    // tree cannot be extended by zero-filling).
    tree: Vec<u64>,
    markers: Vec<u64>,
    last_pos: HashMap<u64, usize, BuildHasherDefault<Mul64Hasher>>,
    distances: Vec<Option<u64>>,
    n_accesses: usize,
}

/// Multiply-shift hasher for the u64 page keys in `last_pos`. The tracker
/// runs on every recorded page map, and the default SipHash is the single
/// costliest part of that path; Fibonacci multiplication mixes 64-bit keys
/// more than well enough for a position map nobody iterates. Only the
/// lookup/insert behaviour of the map is observable, so the swap cannot
/// change any recorded distance.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mul64Hasher(u64);

impl Hasher for Mul64Hasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    fn finish(&self) -> u64 {
        // The multiply pushes entropy toward the high bits; hashbrown takes
        // its bucket index from the top, so no extra finalizer is needed.
        self.0
    }
}

impl ReuseDistance {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    fn tree_add(&mut self, pos: usize, delta: i64) {
        self.markers[pos] = self.markers[pos].wrapping_add(delta as u64);
        let mut i = pos + 1;
        while i <= self.tree.len() {
            let slot = &mut self.tree[i - 1];
            *slot = slot.wrapping_add(delta as u64);
            i += i & i.wrapping_neg();
        }
    }

    /// Grows capacity to at least `cap` and rebuilds the Fenwick tree.
    fn grow(&mut self, cap: usize) {
        let cap = cap.next_power_of_two().max(64);
        self.markers.resize(cap, 0);
        self.tree = vec![0; cap];
        for i in 1..=cap {
            self.tree[i - 1] = self.tree[i - 1].wrapping_add(self.markers[i - 1]);
            let parent = i + (i & i.wrapping_neg());
            if parent <= cap {
                self.tree[parent - 1] = self.tree[parent - 1].wrapping_add(self.tree[i - 1]);
            }
        }
    }

    /// Sum of "most recent occurrence" markers in positions `[0, i]`.
    fn tree_sum(&self, i: usize) -> u64 {
        let mut s = 0u64;
        let mut j = i + 1;
        while j > 0 {
            s = s.wrapping_add(self.tree[j - 1]);
            j -= j & j.wrapping_neg();
        }
        s
    }

    /// Records an access to `key` and returns its reuse distance.
    pub fn access(&mut self, key: u64) -> Option<u64> {
        let pos = self.n_accesses;
        self.n_accesses += 1;
        if self.tree.len() < self.n_accesses {
            self.grow(self.n_accesses);
        }
        let dist = if let Some(&prev) = self.last_pos.get(&key) {
            // Distinct keys strictly between prev and pos: markers in
            // (prev, pos) = sum[0..pos-1] - sum[0..prev].
            let upto_pos = if pos == 0 { 0 } else { self.tree_sum(pos - 1) };
            let upto_prev = self.tree_sum(prev);
            // Remove the old "most recent" marker for this key.
            self.tree_add(prev, -1);
            Some(upto_pos - upto_prev)
        } else {
            None
        };
        self.tree_add(pos, 1);
        self.last_pos.insert(key, pos);
        self.distances.push(dist);
        dist
    }

    /// Forgets every recorded access while keeping the marker, distance and
    /// position-map storage — the arena hook for back-to-back runs.
    pub fn reset(&mut self) {
        self.tree.clear();
        self.markers.clear();
        self.last_pos.clear();
        self.distances.clear();
        self.n_accesses = 0;
    }

    /// All recorded distances, in access order.
    pub fn distances(&self) -> &[Option<u64>] {
        &self.distances
    }

    /// Number of recorded accesses.
    pub fn len(&self) -> usize {
        self.n_accesses
    }

    /// Returns `true` if no accesses were recorded.
    pub fn is_empty(&self) -> bool {
        self.n_accesses == 0
    }

    /// Serializes the full tracker state for checkpointing. The Fenwick
    /// tree and markers are captured verbatim (physical state), the
    /// position map sorted by key so the byte stream is deterministic.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.u64_slice(&self.tree);
        w.u64_slice(&self.markers);
        let mut pairs: Vec<(u64, usize)> = self.last_pos.iter().map(|(&k, &v)| (k, v)).collect();
        pairs.sort_unstable();
        w.seq(pairs.len());
        for (k, v) in pairs {
            w.u64(k);
            w.usize(v);
        }
        w.seq(self.distances.len());
        for d in &self.distances {
            w.opt(d, |w, &v| w.u64(v));
        }
        w.usize(self.n_accesses);
    }

    /// Rebuilds a tracker captured by [`ReuseDistance::snap`].
    pub fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        let tree = r.u64_vec()?;
        let markers = r.u64_vec()?;
        let n = r.seq()?;
        let mut last_pos =
            HashMap::with_capacity_and_hasher(n, BuildHasherDefault::<Mul64Hasher>::default());
        for _ in 0..n {
            let k = r.u64()?;
            let v = r.usize()?;
            last_pos.insert(k, v);
        }
        let n = r.seq()?;
        let mut distances = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            distances.push(r.opt(|r| r.u64())?);
        }
        Ok(Self {
            tree,
            markers,
            last_pos,
            distances,
            n_accesses: r.usize()?,
        })
    }

    /// Fraction of re-accesses whose reuse distance is at least `threshold`
    /// (i.e. likely misses in a cache of `threshold` entries).
    pub fn fraction_at_least(&self, threshold: u64) -> f64 {
        let reaccesses: Vec<u64> = self.distances.iter().filter_map(|d| *d).collect();
        if reaccesses.is_empty() {
            return 0.0;
        }
        let over = reaccesses.iter().filter(|&&d| d >= threshold).count();
        over as f64 / reaccesses.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn histogram_single_value() {
        let mut h = Histogram::new();
        h.record(777);
        assert_eq!(h.percentile(0.0), 777);
        assert_eq!(h.percentile(100.0), 777);
        assert_eq!(h.min(), 777);
        assert_eq!(h.max(), 777);
    }

    #[test]
    fn histogram_small_values_exact() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        // Sub-32 values are bucketed exactly.
        assert_eq!(h.percentile(100.0), 31);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn histogram_percentile_accuracy() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for p in [50.0, 90.0, 99.0, 99.9] {
            let est = h.percentile(p) as f64;
            let exact = p / 100.0 * 100_000.0;
            let err = (est - exact).abs() / exact;
            assert!(err < 0.04, "p{p}: est {est} vs exact {exact}");
        }
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=500u64 {
            a.record(v);
        }
        for v in 501..=1000u64 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        assert_eq!(a.max(), 1000);
        assert_eq!(a.min(), 1);
        let p50 = a.percentile(50.0);
        assert!((480..=530).contains(&p50), "p50={p50}");
    }

    #[test]
    fn histogram_mean_exact() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        h.record(60);
        assert_eq!(h.mean(), 30.0);
    }

    #[test]
    fn mean_tracker() {
        let mut m = MeanTracker::new();
        assert_eq!(m.mean(), 0.0);
        m.add(1.0);
        m.add(2.0);
        m.add(3.0);
        assert_eq!(m.mean(), 2.0);
        assert_eq!(m.sum(), 6.0);
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn reuse_distance_basic() {
        let mut rd = ReuseDistance::new();
        // a b c a b b
        for k in [0u64, 1, 2, 0, 1, 1] {
            rd.access(k);
        }
        assert_eq!(
            rd.distances(),
            &[None, None, None, Some(2), Some(2), Some(0)]
        );
    }

    #[test]
    fn reuse_distance_repeated_same_key() {
        let mut rd = ReuseDistance::new();
        for _ in 0..5 {
            rd.access(42);
        }
        assert_eq!(rd.distances()[1..], [Some(0); 4]);
    }

    #[test]
    fn reuse_distance_counts_distinct_not_total() {
        let mut rd = ReuseDistance::new();
        // a b b b a -> distance for final a is 1 (only b between).
        for k in [0u64, 1, 1, 1, 0] {
            rd.access(k);
        }
        assert_eq!(rd.distances()[4], Some(1));
    }

    #[test]
    fn reuse_distance_fraction() {
        let mut rd = ReuseDistance::new();
        // Cyclic access over 4 keys: every re-access has distance 3.
        for i in 0..40u64 {
            rd.access(i % 4);
        }
        assert_eq!(rd.fraction_at_least(4), 0.0);
        assert_eq!(rd.fraction_at_least(3), 1.0);
        assert!(rd.fraction_at_least(2) > 0.99);
    }

    #[test]
    fn reuse_distance_matches_naive_on_random_stream() {
        use crate::rng::SimRng;
        let mut rng = SimRng::seed(11);
        let keys: Vec<u64> = (0..2000).map(|_| rng.range(0, 50)).collect();
        let mut rd = ReuseDistance::new();
        let mut naive_last: HashMap<u64, usize> = HashMap::new();
        for (i, &k) in keys.iter().enumerate() {
            let got = rd.access(k);
            let expected = naive_last.get(&k).map(|&p| {
                let mut set = std::collections::HashSet::new();
                for &kk in &keys[p + 1..i] {
                    set.insert(kk);
                }
                set.len() as u64
            });
            assert_eq!(got, expected, "at access {i}");
            naive_last.insert(k, i);
        }
    }
}
