//! Seedable, reproducible randomness for workload generation.
//!
//! All stochastic choices in the simulation (flow start jitter, RPC
//! inter-arrival times, key/value selection in the application models) draw
//! from a [`SimRng`] seeded from the experiment configuration, so every run
//! is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random number generator for simulation use.
///
/// Wraps a seeded [`StdRng`]; the wrapper exists so model crates do not
/// depend on `rand` directly and so we can expose only the handful of
/// distributions the simulation needs.
///
/// # Examples
///
/// ```
/// use fns_sim::rng::SimRng;
///
/// let mut a = SimRng::seed(7);
/// let mut b = SimRng::seed(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator, e.g. one per flow.
    ///
    /// The child stream is a deterministic function of the parent state and
    /// `salt`, so adding a new consumer does not perturb existing streams as
    /// long as salts are stable.
    pub fn fork(&self, salt: u64) -> Self {
        // Clone the parent state and mix in the salt via a fresh seed; the
        // parent's own stream is left untouched.
        let mut probe = self.inner.clone();
        let base: u64 = probe.gen();
        Self::seed(base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed duration with the given mean (nanoseconds).
    ///
    /// Used for Poisson arrival processes in the RPC workload. Returns at
    /// least 1 ns so arrival processes always make progress.
    pub fn exp_ns(&mut self, mean_ns: f64) -> u64 {
        let u: f64 = self.next_f64();
        // Avoid ln(0).
        let u = u.max(1e-12);
        let x = -mean_ns * u.ln();
        (x.max(1.0)) as u64
    }

    /// Picks a uniformly random element index for a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "index into empty slice");
        self.inner.gen_range(0..len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed(123);
        let mut b = SimRng::seed(123);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let parent = SimRng::seed(9);
        let mut c1 = parent.fork(1);
        let mut c1b = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn range_bounds() {
        let mut r = SimRng::seed(5);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn exp_ns_mean_roughly_right() {
        let mut r = SimRng::seed(42);
        let n = 20_000;
        let mean = 1000.0;
        let total: u64 = (0..n).map(|_| r.exp_ns(mean)).sum();
        let emp = total as f64 / n as f64;
        assert!((emp - mean).abs() < mean * 0.05, "empirical mean {emp}");
    }

    #[test]
    fn exp_ns_is_positive() {
        let mut r = SimRng::seed(42);
        for _ in 0..1000 {
            assert!(r.exp_ns(0.5) >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::seed(0).range(5, 5);
    }
}
