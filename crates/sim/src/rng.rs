//! Seedable, reproducible randomness for workload generation.
//!
//! All stochastic choices in the simulation (flow start jitter, RPC
//! inter-arrival times, key/value selection in the application models, fault
//! injection) draw from a [`SimRng`] seeded from the experiment
//! configuration, so every run is reproducible.

/// A deterministic random number generator for simulation use.
///
/// Implements xoshiro256++ with SplitMix64 seed expansion — hand-rolled so
/// the simulation has zero external dependencies and the bit stream is
/// stable across toolchains. The wrapper exposes only the handful of
/// distributions the simulation needs.
///
/// # Examples
///
/// ```
/// use fns_sim::rng::SimRng;
///
/// let mut a = SimRng::seed(7);
/// let mut b = SimRng::seed(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

/// Weyl increment used by SplitMix64 and for salt mixing.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        // SplitMix64 expansion guarantees a non-zero xoshiro state for every
        // seed, including 0.
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child generator, e.g. one per flow.
    ///
    /// The child stream is a deterministic function of the parent state and
    /// `salt`, so adding a new consumer does not perturb existing streams as
    /// long as salts are stable.
    pub fn fork(&self, salt: u64) -> Self {
        // Peek the parent's next output without advancing it; the parent's
        // own stream is left untouched.
        let mut probe = self.clone();
        let base = probe.next_u64();
        Self::seed(base ^ salt.wrapping_mul(GOLDEN_GAMMA))
    }

    /// Uniform `u64` (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        // Lemire's multiply-shift maps the 64-bit draw onto the span; the
        // bias is < 2^-64 per draw, far below anything the simulation can
        // observe.
        let span = hi - lo;
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed duration with the given mean (nanoseconds).
    ///
    /// Used for Poisson arrival processes in the RPC workload. Returns at
    /// least 1 ns so arrival processes always make progress.
    pub fn exp_ns(&mut self, mean_ns: f64) -> u64 {
        let u: f64 = self.next_f64();
        // Avoid ln(0).
        let u = u.max(1e-12);
        let x = -mean_ns * u.ln();
        (x.max(1.0)) as u64
    }

    /// Picks a uniformly random element index for a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "index into empty slice");
        self.range(0, len as u64) as usize
    }

    /// Raw xoshiro256++ state, for checkpointing. Restoring via
    /// [`SimRng::from_state`] resumes the exact bit stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a captured [`SimRng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        Self { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed(123);
        let mut b = SimRng::seed(123);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SimRng::seed(0);
        let draws: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&v| v != 0));
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let parent = SimRng::seed(9);
        let mut c1 = parent.fork(1);
        let mut c1b = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn fork_leaves_parent_untouched() {
        let parent = SimRng::seed(9);
        let mut a = parent.clone();
        let _child = parent.fork(77);
        let mut b = parent.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_bounds() {
        let mut r = SimRng::seed(5);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn range_covers_span() {
        let mut r = SimRng::seed(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.range(0, 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some values never drawn: {seen:?}");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SimRng::seed(3);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn exp_ns_mean_roughly_right() {
        let mut r = SimRng::seed(42);
        let n = 20_000;
        let mean = 1000.0;
        let total: u64 = (0..n).map(|_| r.exp_ns(mean)).sum();
        let emp = total as f64 / n as f64;
        assert!((emp - mean).abs() < mean * 0.05, "empirical mean {emp}");
    }

    #[test]
    fn exp_ns_is_positive() {
        let mut r = SimRng::seed(42);
        for _ in 0..1000 {
            assert!(r.exp_ns(0.5) >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::seed(0).range(5, 5);
    }
}
