//! Simulation time and bandwidth arithmetic.
//!
//! All simulation time is measured in integer nanoseconds ([`Nanos`]). The
//! paper's quantities of interest (memory read latency ≈ 197 ns, per-page
//! PCIe cost ≈ 65 ns, RTO ≈ milliseconds) all fit comfortably in `u64`
//! nanoseconds: 2^64 ns ≈ 584 years of simulated time.

/// Simulation timestamp / duration, in nanoseconds.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICROS: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MILLIS: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SECOND: Nanos = 1_000_000_000;

/// A link or bus bandwidth, stored as bits per second.
///
/// Provides exact integer serialization-time computations so that simulation
/// runs are bit-reproducible across platforms.
///
/// # Examples
///
/// ```
/// use fns_sim::time::Bandwidth;
///
/// let link = Bandwidth::gbps(100);
/// // 4 KB at 100 Gbps takes 327.68 ns, rounded up to 328 ns.
/// assert_eq!(link.transfer_time_ns(4096), 328);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth {
    bits_per_sec: u64,
}

impl Bandwidth {
    /// Creates a bandwidth of `g` gigabits per second.
    pub const fn gbps(g: u64) -> Self {
        Self {
            bits_per_sec: g * 1_000_000_000,
        }
    }

    /// Creates a bandwidth of `m` megabits per second.
    pub const fn mbps(m: u64) -> Self {
        Self {
            bits_per_sec: m * 1_000_000,
        }
    }

    /// Creates a bandwidth from raw bits per second.
    pub const fn bps(bits_per_sec: u64) -> Self {
        Self { bits_per_sec }
    }

    /// Returns the bandwidth in bits per second.
    pub const fn bits_per_sec(self) -> u64 {
        self.bits_per_sec
    }

    /// Returns the bandwidth in gigabits per second (floating point).
    pub fn as_gbps(self) -> f64 {
        self.bits_per_sec as f64 / 1e9
    }

    /// Time to serialize `bytes` bytes at this bandwidth, rounded up to the
    /// next nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is zero.
    pub fn transfer_time_ns(self, bytes: u64) -> Nanos {
        assert!(self.bits_per_sec > 0, "zero bandwidth");
        let bits = (bytes as u128) * 8;
        let num = bits * (SECOND as u128);
        let den = self.bits_per_sec as u128;
        num.div_ceil(den) as Nanos
    }

    /// Bytes that can be serialized in `ns` nanoseconds at this bandwidth.
    pub fn bytes_in(self, ns: Nanos) -> u64 {
        ((self.bits_per_sec as u128 * ns as u128) / (8 * SECOND as u128)) as u64
    }
}

/// Computes achieved throughput in Gbps given bytes moved over a duration.
///
/// Returns 0.0 for a zero-length interval.
pub fn throughput_gbps(bytes: u64, elapsed: Nanos) -> f64 {
    if elapsed == 0 {
        return 0.0;
    }
    (bytes as f64 * 8.0) / elapsed as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_construction() {
        assert_eq!(Bandwidth::gbps(100).bits_per_sec(), 100_000_000_000);
        assert_eq!(Bandwidth::mbps(100).bits_per_sec(), 100_000_000);
        assert!((Bandwidth::gbps(100).as_gbps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_rounds_up() {
        let bw = Bandwidth::gbps(100);
        // 32768 bits / 100 Gbps = 327.68 ns, rounded up to 328 ns.
        assert_eq!(bw.transfer_time_ns(4096), 328);
        assert_eq!(bw.transfer_time_ns(0), 0);
    }

    #[test]
    fn transfer_time_exact_division() {
        // 125 MBps = 1 Gbps; 125 bytes = 1000 bits -> exactly 1000 ns.
        let bw = Bandwidth::gbps(1);
        assert_eq!(bw.transfer_time_ns(125), 1000);
    }

    #[test]
    fn bytes_in_inverts_transfer_time() {
        let bw = Bandwidth::gbps(100);
        let t = bw.transfer_time_ns(1_000_000);
        let b = bw.bytes_in(t);
        assert!(b >= 1_000_000);
        assert!(b < 1_000_100);
    }

    #[test]
    fn throughput_helper() {
        // 12.5 GB over 1 s = 100 Gbps.
        let g = throughput_gbps(12_500_000_000, SECOND);
        assert!((g - 100.0).abs() < 1e-6);
        assert_eq!(throughput_gbps(100, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero bandwidth")]
    fn zero_bandwidth_panics() {
        Bandwidth::bps(0).transfer_time_ns(1);
    }
}
