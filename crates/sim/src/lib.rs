//! Deterministic discrete-event simulation substrate for the F&S reproduction.
//!
//! The paper evaluates a kernel patch on real Cascade Lake / Ice Lake servers;
//! this workspace replaces that testbed with a deterministic discrete-event
//! simulation. This crate provides the shared machinery every model crate
//! builds on:
//!
//! * [`time`] — nanosecond clock arithmetic and bandwidth/latency helpers,
//! * [`queue`] — a monotonic, deterministically tie-broken event queue,
//! * [`rng`] — a seedable, reproducible random number generator,
//! * [`stats`] — counters, log-linear latency histograms (P50..P99.99), and a
//!   reuse-distance tracker used to regenerate the locality panels
//!   (Figures 2e, 3e, 7e and 8e of the paper).
//!
//! # Examples
//!
//! ```
//! use fns_sim::queue::EventQueue;
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.push(100, "b");
//! q.push(50, "a");
//! assert_eq!(q.pop(), Some((50, "a")));
//! assert_eq!(q.now(), 50);
//! ```

pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use queue::EventQueue;
pub use rng::SimRng;
pub use stats::{Histogram, MeanTracker, ReuseDistance};
pub use time::{Bandwidth, Nanos};
