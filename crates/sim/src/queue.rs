//! Deterministic event queue with a monotonic clock.
//!
//! The queue is a min-heap keyed by `(timestamp, sequence number)`. The
//! sequence number breaks ties in insertion order, which makes every
//! simulation run bit-reproducible: two events scheduled for the same
//! nanosecond always fire in the order they were pushed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Nanos;

/// An entry in the queue: ordering key plus opaque payload.
struct Entry<E> {
    at: Nanos,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    /// The single source of ordering truth: `(timestamp, sequence)`. Every
    /// comparator below derives from this key so the eq/ord impls can never
    /// drift apart.
    fn key(&self) -> (Nanos, u64) {
        (self.at, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// A deterministic discrete-event queue.
///
/// Events are popped in nondecreasing timestamp order; ties are broken by
/// insertion order. Popping advances the queue's clock ([`EventQueue::now`]).
///
/// # Examples
///
/// ```
/// use fns_sim::queue::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(10, 'a');
/// q.push(10, 'b'); // same timestamp: fires after 'a'
/// q.push(5, 'c');
/// assert_eq!(q.pop(), Some((5, 'c')));
/// assert_eq!(q.pop(), Some((10, 'a')));
/// assert_eq!(q.pop(), Some((10, 'b')));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: Nanos,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at time zero.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with room for `capacity` pending events, so a
    /// workload whose steady-state backlog stays below it never reallocates
    /// on push.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
            now: 0,
            popped: 0,
        }
    }

    /// Reserves capacity for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Number of pending events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Total events popped over the queue's lifetime (the denominator of
    /// the harness's events/sec throughput metric).
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before [`EventQueue::now`]); scheduling
    /// into the past would silently reorder causality.
    pub fn push(&mut self, at: Nanos, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Schedules `event` to fire `delay` nanoseconds from now.
    pub fn push_after(&mut self, delay: Nanos, event: E) {
        let at = self.now.saturating_add(delay);
        self.push(at, event);
    }

    /// Pops the earliest event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        let Reverse(e) = self.heap.pop()?;
        debug_assert!(e.at >= self.now);
        self.now = e.at;
        self.popped += 1;
        Some((e.at, e.event))
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(30, 3);
        q.push(10, 1);
        q.push(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
    }

    #[test]
    fn fifo_within_same_timestamp() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(42, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((42, i)));
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0);
        q.push(7, ());
        q.pop();
        assert_eq!(q.now(), 7);
    }

    #[test]
    fn push_after_is_relative() {
        let mut q = EventQueue::new();
        q.push(100, 'a');
        q.pop();
        q.push_after(50, 'b');
        assert_eq!(q.pop(), Some((150, 'b')));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.push(100, ());
        q.pop();
        q.push(99, ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, ());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.peek_time(), Some(1));
    }

    #[test]
    fn steady_state_churn_never_reallocates() {
        let mut q = EventQueue::with_capacity(64);
        let cap = q.capacity();
        assert!(cap >= 64);
        // Fill to half capacity, then churn pop/push far past the initial
        // fill: a steady-state backlog below capacity must never grow the
        // heap allocation.
        for i in 0..32u64 {
            q.push(i, i);
        }
        for i in 32..10_000u64 {
            let (_, _) = q.pop().expect("backlog nonempty");
            q.push(i, i);
            assert_eq!(q.capacity(), cap, "steady-state push reallocated");
        }
        assert_eq!(q.total_popped(), 10_000 - 32);
    }

    #[test]
    fn reserve_grows_capacity_up_front() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.reserve(1000);
        assert!(q.capacity() >= 1000);
        let cap = q.capacity();
        for i in 0..1000 {
            q.push(i, ());
        }
        assert_eq!(q.capacity(), cap);
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.push(5, 0u32);
        q.push(1, 1);
        assert_eq!(q.pop(), Some((1, 1)));
        q.push(3, 2);
        q.push(2, 3);
        assert_eq!(q.pop(), Some((2, 3)));
        assert_eq!(q.pop(), Some((3, 2)));
        assert_eq!(q.pop(), Some((5, 0)));
    }
}
