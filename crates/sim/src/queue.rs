//! Deterministic event queue with a monotonic clock.
//!
//! Events are ordered by `(timestamp, sequence number)`. The sequence number
//! breaks ties in insertion order, which makes every simulation run
//! bit-reproducible: two events scheduled for the same nanosecond always
//! fire in the order they were pushed.
//!
//! Two implementations live behind the same API, selected by [`QueueKind`]:
//!
//! * [`QueueKind::Wheel`] (the default) — a hierarchical timing wheel:
//!   `LEVELS` levels of `SLOTS` slots each, where a level-`l` slot covers
//!   `SLOTS^l` nanoseconds. Level-0 slots are one nanosecond wide, so every
//!   entry in a level-0 slot shares a timestamp and plain append order *is*
//!   FIFO order — no comparisons on the hot path. Entries live in a slab of
//!   intrusively linked nodes; moving an entry between slots is a pointer
//!   relink, never a payload copy. Events beyond the wheel's horizon
//!   (`SLOTS^LEVELS` ns ≈ 16.8 ms of absolute-time blocks) overflow into a
//!   sorted spill heap and migrate back a block at a time when the wheel
//!   drains; the invariant "every wheel entry precedes every spill entry"
//!   keeps the two regions totally ordered.
//! * [`QueueKind::Heap`] — the original binary min-heap, kept as the
//!   reference implementation for the step-for-step differential test
//!   (`tests/queue_equivalence.rs`) and the bit-identical `RunMetrics`
//!   cross-check in `tests/golden_determinism.rs`.
//!
//! Both honor `with_capacity`/`reserve`, and both count storage growths
//! ([`EventQueue::reallocs`]) so benchmarks can assert that a pre-sized
//! queue never reallocates in steady state.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Nanos;

/// Which queue implementation an [`EventQueue`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// Hierarchical timing wheel (the fast default).
    #[default]
    Wheel,
    /// Binary min-heap (the differential-testing reference).
    Heap,
}

/// An entry in the heap variant: ordering key plus opaque payload.
struct Entry<E> {
    at: Nanos,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    /// The single source of ordering truth: `(timestamp, sequence)`. Every
    /// comparator below derives from this key so the eq/ord impls can never
    /// drift apart.
    fn key(&self) -> (Nanos, u64) {
        (self.at, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// log2 of the slot count per wheel level.
const SLOT_BITS: u32 = 6;
/// Slots per level (64).
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels. A level-`l` slot spans `SLOTS^l` ns, so four levels cover
/// an absolute-time block of `SLOTS^4 = 2^24` ns (~16.8 ms) before events
/// overflow to the spill heap.
const LEVELS: usize = 4;
/// Bits of absolute time covered by the whole wheel.
const HORIZON_BITS: u32 = SLOT_BITS * LEVELS as u32;
/// Null link in the node slab.
const NIL: u32 = u32::MAX;

/// Slab node: ordering key, payload, and an intrusive singly-linked chain
/// through whichever slot (or the free list) currently owns it.
struct Node<E> {
    at: Nanos,
    seq: u64,
    next: u32,
    event: Option<E>,
}

/// The timing-wheel implementation. See the module docs for the layout.
///
/// Invariants:
/// * `base[l]` is the absolute-time block (`at >> (SLOT_BITS*(l+1))`)
///   currently represented by level `l`; every entry parked at level `l`
///   satisfies `block(at, l) == base[l]`.
/// * Every entry is parked at the *lowest* level whose block matches, so
///   the lowest occupied slot of the lowest occupied level always holds the
///   global minimum (after `settle`).
/// * Every spill entry is strictly beyond level `LEVELS-1`'s current block,
///   so the wheel's minimum always precedes the spill's minimum.
struct Wheel<E> {
    nodes: Vec<Node<E>>,
    free: u32,
    head: [[u32; SLOTS]; LEVELS],
    tail: [[u32; SLOTS]; LEVELS],
    occupied: [u64; LEVELS],
    base: [Nanos; LEVELS],
    spill: BinaryHeap<Reverse<(Nanos, u64, u32)>>,
    len: usize,
    grew: u64,
    /// Analytic fast-forward (see [`Wheel::settle`]). On by default; the
    /// one-level-per-pass cascade is kept behind this switch as the
    /// reference for the fast-forward-on-vs-off differential pins.
    fast_forward: bool,
}

#[inline]
fn block(at: Nanos, level: usize) -> Nanos {
    at >> (SLOT_BITS * (level as u32 + 1))
}

#[inline]
fn slot(at: Nanos, level: usize) -> usize {
    ((at >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize
}

impl<E> Wheel<E> {
    fn with_capacity(capacity: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(capacity),
            free: NIL,
            head: [[NIL; SLOTS]; LEVELS],
            tail: [[NIL; SLOTS]; LEVELS],
            occupied: [0; LEVELS],
            base: [0; LEVELS],
            spill: BinaryHeap::new(),
            len: 0,
            grew: 0,
            fast_forward: true,
        }
    }

    fn alloc_node(&mut self, at: Nanos, seq: u64, event: E) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let node = &mut self.nodes[idx as usize];
            self.free = node.next;
            node.at = at;
            node.seq = seq;
            node.next = NIL;
            node.event = Some(event);
            return idx;
        }
        if self.nodes.len() == self.nodes.capacity() {
            self.grew += 1;
        }
        self.nodes.push(Node {
            at,
            seq,
            next: NIL,
            event: Some(event),
        });
        (self.nodes.len() - 1) as u32
    }

    #[inline]
    fn append(&mut self, level: usize, s: usize, idx: u32) {
        self.nodes[idx as usize].next = NIL;
        let tail = self.tail[level][s];
        if tail == NIL {
            self.head[level][s] = idx;
        } else {
            self.nodes[tail as usize].next = idx;
        }
        self.tail[level][s] = idx;
        self.occupied[level] |= 1u64 << s;
    }

    /// Parks node `idx` at the lowest level whose current block contains
    /// its timestamp, or spills it past the horizon.
    fn place(&mut self, idx: u32) {
        let at = self.nodes[idx as usize].at;
        for l in 0..LEVELS {
            if block(at, l) == self.base[l] {
                self.append(l, slot(at, l), idx);
                return;
            }
        }
        let seq = self.nodes[idx as usize].seq;
        self.spill.push(Reverse((at, seq, idx)));
    }

    fn push(&mut self, at: Nanos, seq: u64, event: E) {
        let idx = self.alloc_node(at, seq, event);
        self.place(idx);
        self.len += 1;
    }

    /// Cascades until the global minimum sits in a level-0 slot. No-op when
    /// the queue is empty or level 0 is already occupied. Cascading only
    /// relinks nodes between slots; it never reorders the pop sequence.
    fn settle(&mut self) {
        if self.len == 0 {
            return;
        }
        loop {
            if self.occupied[0] != 0 {
                return;
            }
            if let Some(l) = (1..LEVELS).find(|&l| self.occupied[l] != 0) {
                // Drain the lowest occupied slot of the lowest occupied
                // level; its slot index pins level l-1's new block.
                let s = self.occupied[l].trailing_zeros() as usize;
                let mut cur = self.head[l][s];
                self.head[l][s] = NIL;
                self.tail[l][s] = NIL;
                self.occupied[l] &= !(1u64 << s);
                if self.fast_forward && l > 1 {
                    // Analytic fast-forward. Every level below l is empty
                    // (l is the lowest occupied level), so there is provably
                    // no event before this slot's minimum timestamp T: jump
                    // every lower base straight to T's blocks and park each
                    // node at its final level in one relink, instead of
                    // re-walking the whole slot once per intermediate level.
                    // Traversal order is the slot's FIFO order and `place`
                    // appends, so head/tail/base state after this pass is
                    // bit-identical to what the cascade converges to.
                    let mut min_at = Nanos::MAX;
                    let mut probe = cur;
                    while probe != NIL {
                        let node = &self.nodes[probe as usize];
                        min_at = min_at.min(node.at);
                        probe = node.next;
                    }
                    for k in 0..l {
                        self.base[k] = block(min_at, k);
                    }
                    while cur != NIL {
                        let next = self.nodes[cur as usize].next;
                        debug_assert_eq!(
                            block(self.nodes[cur as usize].at, l - 1),
                            self.base[l - 1]
                        );
                        self.place(cur);
                        cur = next;
                    }
                    // The minimum landed at level 0 by construction.
                    debug_assert_ne!(self.occupied[0], 0);
                    return;
                }
                self.base[l - 1] = (self.base[l] << SLOT_BITS) | s as u64;
                while cur != NIL {
                    let next = self.nodes[cur as usize].next;
                    let at = self.nodes[cur as usize].at;
                    debug_assert_eq!(block(at, l - 1), self.base[l - 1]);
                    self.append(l - 1, slot(at, l - 1), cur);
                    cur = next;
                }
                continue;
            }
            // Wheel empty but events pending: rebase onto the next spill
            // block and migrate every entry inside it. The block's earliest
            // entry lands at level 0, so the loop terminates next pass.
            let t = self
                .spill
                .peek()
                .expect("pending events must be spilled")
                .0
                 .0;
            for (l, b) in self.base.iter_mut().enumerate() {
                *b = block(t, l);
            }
            while let Some(&Reverse((at, _, idx))) = self.spill.peek() {
                if (at >> HORIZON_BITS) != self.base[LEVELS - 1] {
                    break;
                }
                self.spill.pop();
                self.place(idx);
            }
        }
    }

    fn pop(&mut self) -> Option<(Nanos, E)> {
        if self.len == 0 {
            return None;
        }
        self.settle();
        let s = self.occupied[0].trailing_zeros() as usize;
        let idx = self.head[0][s];
        debug_assert_ne!(idx, NIL);
        let node = &mut self.nodes[idx as usize];
        let at = node.at;
        debug_assert_eq!(at, (self.base[0] << SLOT_BITS) | s as u64);
        let event = node.event.take().expect("parked node holds its payload");
        let next = node.next;
        node.next = self.free;
        self.free = idx;
        self.head[0][s] = next;
        if next == NIL {
            self.tail[0][s] = NIL;
            self.occupied[0] &= !(1u64 << s);
        }
        self.len -= 1;
        Some((at, event))
    }

    /// Timestamp of the earliest pending event. Settles first so the
    /// answer is a level-0 slot read; settling never changes pop order.
    fn peek_time(&mut self) -> Option<Nanos> {
        if self.len == 0 {
            return None;
        }
        self.settle();
        let s = self.occupied[0].trailing_zeros() as u64;
        Some((self.base[0] << SLOT_BITS) | s)
    }

    fn reset(&mut self) {
        self.nodes.clear();
        self.free = NIL;
        self.head = [[NIL; SLOTS]; LEVELS];
        self.tail = [[NIL; SLOTS]; LEVELS];
        self.occupied = [0; LEVELS];
        self.base = [0; LEVELS];
        self.spill.clear();
        self.len = 0;
        self.grew = 0;
    }
}

/// A deterministic discrete-event queue.
///
/// Events are popped in nondecreasing timestamp order; ties are broken by
/// insertion order. Popping advances the queue's clock ([`EventQueue::now`]).
///
/// # Examples
///
/// ```
/// use fns_sim::queue::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(10, 'a');
/// q.push(10, 'b'); // same timestamp: fires after 'a'
/// q.push(5, 'c');
/// assert_eq!(q.pop(), Some((5, 'c')));
/// assert_eq!(q.pop(), Some((10, 'a')));
/// assert_eq!(q.pop(), Some((10, 'b')));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    imp: Imp<E>,
    seq: u64,
    now: Nanos,
    popped: u64,
}

// The wheel variant inlines its per-level slot-head/tail arrays (~2 KiB):
// one queue exists per simulation, so the footprint is irrelevant, while
// boxing would put an extra indirection on every push/pop of the hottest
// structure in the simulator.
#[allow(clippy::large_enum_variant)]
enum Imp<E> {
    Wheel(Wheel<E>),
    Heap(BinaryHeap<Reverse<Entry<E>>>, u64),
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at time zero.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with room for `capacity` pending events, so a
    /// workload whose steady-state backlog stays below it never reallocates
    /// on push.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_kind(QueueKind::Wheel, capacity)
    }

    /// Creates an empty queue on the chosen implementation.
    pub fn with_kind(kind: QueueKind, capacity: usize) -> Self {
        let imp = match kind {
            QueueKind::Wheel => Imp::Wheel(Wheel::with_capacity(capacity)),
            QueueKind::Heap => Imp::Heap(BinaryHeap::with_capacity(capacity), 0),
        };
        Self {
            imp,
            seq: 0,
            now: 0,
            popped: 0,
        }
    }

    /// Which implementation this queue runs on.
    pub fn kind(&self) -> QueueKind {
        match &self.imp {
            Imp::Wheel(_) => QueueKind::Wheel,
            Imp::Heap(..) => QueueKind::Heap,
        }
    }

    /// Enables or disables the wheel's analytic fast-forward (on by
    /// default). Off restores the one-level-per-pass reference cascade; the
    /// pop stream — and in fact the wheel's entire internal state after
    /// every settle — is bit-identical either way, pinned by
    /// `tests/queue_equivalence.rs`. No-op on the heap backend.
    pub fn set_fast_forward(&mut self, on: bool) {
        if let Imp::Wheel(w) = &mut self.imp {
            w.fast_forward = on;
        }
    }

    /// Whether the wheel's analytic fast-forward is enabled (always `true`
    /// for the heap backend, which has nothing to cascade).
    pub fn fast_forward(&self) -> bool {
        match &self.imp {
            Imp::Wheel(w) => w.fast_forward,
            Imp::Heap(..) => true,
        }
    }

    /// Reserves capacity for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        match &mut self.imp {
            Imp::Wheel(w) => w.nodes.reserve(additional),
            Imp::Heap(h, _) => h.reserve(additional),
        }
    }

    /// Number of pending events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        match &self.imp {
            Imp::Wheel(w) => w.nodes.capacity(),
            Imp::Heap(h, _) => h.capacity(),
        }
    }

    /// How many times event storage has grown since creation (or the last
    /// [`EventQueue::reset`]). A queue sized with `with_capacity` above its
    /// steady-state backlog reports zero — the benchmark smoke run asserts
    /// exactly that.
    pub fn reallocs(&self) -> u64 {
        match &self.imp {
            Imp::Wheel(w) => w.grew,
            Imp::Heap(_, grew) => *grew,
        }
    }

    /// Total events popped over the queue's lifetime (the denominator of
    /// the harness's events/sec throughput metric).
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.imp {
            Imp::Wheel(w) => w.len,
            Imp::Heap(h, _) => h.len(),
        }
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before [`EventQueue::now`]); scheduling
    /// into the past would silently reorder causality.
    pub fn push(&mut self, at: Nanos, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        match &mut self.imp {
            Imp::Wheel(w) => w.push(at, seq, event),
            Imp::Heap(h, grew) => {
                if h.len() == h.capacity() {
                    *grew += 1;
                }
                h.push(Reverse(Entry { at, seq, event }));
            }
        }
    }

    /// Schedules `event` to fire `delay` nanoseconds from now.
    pub fn push_after(&mut self, delay: Nanos, event: E) {
        let at = self.now.saturating_add(delay);
        self.push(at, event);
    }

    /// Pops the earliest event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        let (at, event) = match &mut self.imp {
            Imp::Wheel(w) => w.pop()?,
            Imp::Heap(h, _) => {
                let Reverse(e) = h.pop()?;
                (e.at, e.event)
            }
        };
        debug_assert!(at >= self.now);
        self.now = at;
        self.popped += 1;
        Some((at, event))
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<Nanos> {
        match &mut self.imp {
            Imp::Wheel(w) => w.peek_time(),
            Imp::Heap(h, _) => h.peek().map(|Reverse(e)| e.at),
        }
    }

    /// Clock and sequencing counters `(now, total_popped, next_seq)` — the
    /// checkpoint hook. A snapshot captures these, drains the pending
    /// events in pop order, then rebuilds via [`EventQueue::set_counters`].
    pub fn counters(&self) -> (Nanos, u64, u64) {
        (self.now, self.popped, self.seq)
    }

    /// Overwrites the clock and sequencing counters — the restore hook.
    ///
    /// Protocol: zero the counters, re-push the drained events in their
    /// original `(time, seq)` order (fresh ascending sequence numbers
    /// preserve their relative order), then restore the captured counters.
    /// The restored `next_seq` exceeds every re-assigned sequence number,
    /// so later pushes tie-break after the re-pushed backlog exactly as
    /// they would have in an uninterrupted run.
    pub fn set_counters(&mut self, now: Nanos, popped: u64, seq: u64) {
        self.now = now;
        self.popped = popped;
        self.seq = seq;
    }

    /// Rewinds the queue to an empty, time-zero state while keeping its
    /// storage (node slab / heap buffer) allocated — the arena-reuse hook.
    pub fn reset(&mut self) {
        match &mut self.imp {
            Imp::Wheel(w) => w.reset(),
            Imp::Heap(h, grew) => {
                h.clear();
                *grew = 0;
            }
        }
        self.seq = 0;
        self.now = 0;
        self.popped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(30, 3);
        q.push(10, 1);
        q.push(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
    }

    #[test]
    fn fifo_within_same_timestamp() {
        for kind in [QueueKind::Wheel, QueueKind::Heap] {
            let mut q = EventQueue::with_kind(kind, 0);
            for i in 0..100 {
                q.push(42, i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some((42, i)));
            }
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0);
        q.push(7, ());
        q.pop();
        assert_eq!(q.now(), 7);
    }

    #[test]
    fn push_after_is_relative() {
        let mut q = EventQueue::new();
        q.push(100, 'a');
        q.pop();
        q.push_after(50, 'b');
        assert_eq!(q.pop(), Some((150, 'b')));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.push(100, ());
        q.pop();
        q.push(99, ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, ());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.peek_time(), Some(1));
    }

    #[test]
    fn steady_state_churn_never_reallocates() {
        for kind in [QueueKind::Wheel, QueueKind::Heap] {
            let mut q = EventQueue::with_kind(kind, 64);
            let cap = q.capacity();
            assert!(cap >= 64);
            // Fill to half capacity, then churn pop/push far past the initial
            // fill: a steady-state backlog below capacity must never grow the
            // event storage.
            for i in 0..32u64 {
                q.push(i, i);
            }
            for i in 32..10_000u64 {
                let (_, _) = q.pop().expect("backlog nonempty");
                q.push(i, i);
                assert_eq!(q.capacity(), cap, "steady-state push reallocated");
            }
            assert_eq!(q.total_popped(), 10_000 - 32);
            assert_eq!(q.reallocs(), 0, "steady-state churn grew {kind:?} storage");
        }
    }

    #[test]
    fn reserve_grows_capacity_up_front() {
        for kind in [QueueKind::Wheel, QueueKind::Heap] {
            let mut q: EventQueue<()> = EventQueue::with_kind(kind, 0);
            q.reserve(1000);
            assert!(q.capacity() >= 1000);
            let cap = q.capacity();
            for i in 0..1000 {
                q.push(i, ());
            }
            assert_eq!(q.capacity(), cap);
            // An explicit up-front reserve is planned growth, not a
            // steady-state reallocation.
            assert_eq!(q.reallocs(), 0);
        }
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.push(5, 0u32);
        q.push(1, 1);
        assert_eq!(q.pop(), Some((1, 1)));
        q.push(3, 2);
        q.push(2, 3);
        assert_eq!(q.pop(), Some((2, 3)));
        assert_eq!(q.pop(), Some((3, 2)));
        assert_eq!(q.pop(), Some((5, 0)));
    }

    #[test]
    fn far_future_events_spill_and_return() {
        // Beyond the 2^24 ns wheel horizon, events overflow to the spill
        // heap; they must still come back in (time, seq) order.
        let mut q = EventQueue::new();
        q.push(3 << HORIZON_BITS, 'c');
        q.push(1, 'a');
        q.push((3 << HORIZON_BITS) + 1, 'd');
        q.push(1 << HORIZON_BITS, 'b');
        assert_eq!(q.pop(), Some((1, 'a')));
        assert_eq!(q.peek_time(), Some(1 << HORIZON_BITS));
        assert_eq!(q.pop(), Some((1 << HORIZON_BITS, 'b')));
        assert_eq!(q.pop(), Some((3 << HORIZON_BITS, 'c')));
        assert_eq!(q.pop(), Some(((3 << HORIZON_BITS) + 1, 'd')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn spill_preserves_fifo_ties() {
        let mut q = EventQueue::new();
        let far = 5 << HORIZON_BITS;
        for i in 0..10u32 {
            q.push(far, i);
        }
        q.push(0, 100);
        assert_eq!(q.pop(), Some((0, 100)));
        for i in 0..10 {
            assert_eq!(q.pop(), Some((far, i)));
        }
    }

    #[test]
    fn reset_rewinds_clock_and_keeps_capacity() {
        for kind in [QueueKind::Wheel, QueueKind::Heap] {
            let mut q = EventQueue::with_kind(kind, 128);
            let cap = q.capacity();
            for i in 0..100u64 {
                q.push(i * 3, i);
            }
            for _ in 0..50 {
                q.pop();
            }
            q.reset();
            assert!(q.is_empty());
            assert_eq!(q.now(), 0);
            assert_eq!(q.total_popped(), 0);
            assert_eq!(q.capacity(), cap);
            // A reset queue behaves like a fresh one, including FIFO ties.
            q.push(4, 1000);
            q.push(4, 1001);
            assert_eq!(q.pop(), Some((4, 1000)));
            assert_eq!(q.pop(), Some((4, 1001)));
        }
    }

    #[test]
    fn node_slab_recycles_after_pop() {
        let mut q = EventQueue::with_capacity(8);
        // Drive the clock past several level-0 blocks: slab nodes freed by
        // pops must be reused, so the backlog of 4 never grows storage.
        for i in 0..4u64 {
            q.push(i * 100, i);
        }
        for i in 4..2000u64 {
            q.pop().unwrap();
            q.push(i * 100, i);
        }
        assert_eq!(q.reallocs(), 0);
    }
}
