//! Differential test: the hierarchical timing wheel must produce exactly
//! the pop sequence of the reference binary heap — same timestamps, same
//! FIFO tie order — over randomized schedules, the same way `lru64` was
//! proven against the map-based `lru`. The wheel runs twice per script:
//! once with the analytic fast-forward (the default) and once on the
//! one-level-per-pass reference cascade, so every workload here also pins
//! fast-forward-on against fast-forward-off.

use fns_sim::queue::{EventQueue, QueueKind};
use fns_sim::rng::SimRng;
use fns_sim::Nanos;

/// Drives all three implementations — fast-forwarding wheel, cascading
/// wheel, reference heap — through an identical push/pop script and
/// asserts every observable agrees step for step.
struct Pair {
    wheel: EventQueue<u32>,
    cascade: EventQueue<u32>,
    heap: EventQueue<u32>,
}

impl Pair {
    fn with_capacity(capacity: usize) -> Self {
        let wheel = EventQueue::with_kind(QueueKind::Wheel, capacity);
        assert!(wheel.fast_forward(), "fast-forward must be the default");
        let mut cascade = EventQueue::with_kind(QueueKind::Wheel, capacity);
        cascade.set_fast_forward(false);
        Self {
            wheel,
            cascade,
            heap: EventQueue::with_kind(QueueKind::Heap, capacity),
        }
    }

    fn push(&mut self, at: Nanos, id: u32) {
        self.wheel.push(at, id);
        self.cascade.push(at, id);
        self.heap.push(at, id);
        assert_eq!(self.wheel.len(), self.heap.len());
        assert_eq!(self.cascade.len(), self.heap.len());
    }

    fn pop(&mut self) -> Option<(Nanos, u32)> {
        let w = self.wheel.pop();
        let c = self.cascade.pop();
        let h = self.heap.pop();
        assert_eq!(w, h, "pop diverged at event #{}", self.heap.total_popped());
        assert_eq!(
            c,
            h,
            "cascade pop diverged at event #{}",
            self.heap.total_popped()
        );
        assert_eq!(self.wheel.now(), self.heap.now());
        assert_eq!(self.cascade.now(), self.heap.now());
        assert_eq!(self.wheel.total_popped(), self.heap.total_popped());
        w
    }

    fn drain(&mut self) {
        while self.pop().is_some() {}
    }
}

/// Random interleaving of pushes and pops with a delay mix that exercises
/// every wheel level: same-nanosecond ties (level-0 FIFO), short and medium
/// delays (levels 0–2), block-boundary crossings (level 3 cascades), and
/// far-future events beyond the 2^24 ns horizon (spill heap + migration).
#[test]
fn randomized_schedules_agree() {
    for seed in 0..8u64 {
        let mut rng = SimRng::seed(0xC0FFEE ^ seed);
        let mut pair = Pair::with_capacity(64);
        let mut id = 0u32;
        for _ in 0..20_000 {
            let action = rng.range(0, 100);
            if action < 55 {
                let now = pair.heap.now();
                let delay = match rng.range(0, 10) {
                    0 => 0,                           // exact tie at `now`
                    1..=4 => rng.range(1, 200),       // short: levels 0-1
                    5..=7 => rng.range(200, 1 << 14), // medium: levels 1-2
                    8 => rng.range(1 << 14, 1 << 22), // long: level 3
                    _ => rng.range(1 << 24, 1 << 27), // beyond horizon: spill
                };
                pair.push(now + delay, id);
                id += 1;
            } else {
                pair.pop();
            }
        }
        pair.drain();
        assert_eq!(pair.wheel.pop(), None);
    }
}

/// Bursts of identical timestamps: FIFO tie order is the property the
/// simulator's determinism rests on.
#[test]
fn dense_tie_bursts_preserve_fifo() {
    let mut rng = SimRng::seed(7);
    let mut pair = Pair::with_capacity(0);
    let mut id = 0u32;
    for round in 0..200u64 {
        let t = pair.heap.now() + rng.range(0, 5);
        for _ in 0..rng.range(1, 20) {
            pair.push(t, id);
            id += 1;
        }
        if round % 3 != 0 {
            for _ in 0..rng.range(1, 25) {
                if pair.pop().is_none() {
                    break;
                }
            }
        }
    }
    pair.drain();
}

/// Far-future-heavy workload: most events overflow the wheel horizon, so
/// migration back out of the spill heap carries the ordering.
#[test]
fn spill_dominated_workload_agrees() {
    let mut rng = SimRng::seed(99);
    let mut pair = Pair::with_capacity(16);
    for id in 0..2_000u32 {
        let now = pair.heap.now();
        // Land most pushes 1-4 horizon blocks out, with duplicates.
        let delay = rng.range(1 << 23, 1 << 26) & !0x3ff;
        pair.push(now + delay, id);
        if id % 3 == 0 {
            pair.pop();
        }
    }
    pair.drain();
}

/// Idle-gap workload aimed squarely at the analytic fast-forward: single
/// events (or small ties) parked multiple levels up with nothing below, so
/// every settle proves a jump. `peek_time` is asserted before each pop —
/// the fast-forwarded base registers must answer the same timestamp the
/// cascade and the heap derive.
#[test]
fn idle_gaps_fast_forward_identically() {
    let mut rng = SimRng::seed(0xFF00D);
    let mut pair = Pair::with_capacity(8);
    let mut id = 0u32;
    for _ in 0..3_000 {
        let now = pair.heap.now();
        // Gaps spanning levels 1-3 and the occasional spill, with a burst
        // of ties at the far timestamp to exercise FIFO across the jump.
        let gap = match rng.range(0, 8) {
            0..=2 => rng.range(1 << 7, 1 << 12),  // level 1-2
            3..=5 => rng.range(1 << 13, 1 << 20), // level 2-3
            6 => rng.range(1 << 20, 1 << 23),     // level 3
            _ => rng.range(1 << 24, 1 << 26),     // spill
        };
        let t = now + gap;
        for _ in 0..rng.range(1, 4) {
            pair.push(t, id);
            id += 1;
        }
        let pw = pair.wheel.peek_time();
        let pc = pair.cascade.peek_time();
        let ph = pair.heap.peek_time();
        assert_eq!(pw, ph, "peek diverged at event #{id}");
        assert_eq!(pc, ph, "cascade peek diverged at event #{id}");
        while pair.pop().is_some() {
            // Drain fully so the next push lands on an empty wheel whose
            // bases were just fast-forwarded.
        }
    }
}

/// `reserve`/`with_capacity` paths: growth bookkeeping must not perturb
/// ordering, and a queue pre-sized above its backlog must never regrow.
#[test]
fn capacity_paths_agree_and_wheel_presizes() {
    let mut pair = Pair::with_capacity(0);
    pair.wheel.reserve(512);
    pair.heap.reserve(512);
    assert!(pair.wheel.capacity() >= 512);
    let cap = pair.wheel.capacity();
    let mut rng = SimRng::seed(0xAB);
    for id in 0..5_000u32 {
        let now = pair.heap.now();
        pair.push(now + rng.range(0, 4096), id);
        if id % 2 == 1 {
            pair.pop();
            pair.pop();
        }
    }
    pair.drain();
    assert_eq!(pair.wheel.capacity(), cap, "pre-sized wheel slab regrew");
    assert_eq!(pair.wheel.reallocs(), 0);
}

/// The wheel honors `with_capacity` exactly like the heap: zero-capacity
/// queues grow, pre-sized queues don't.
#[test]
fn with_capacity_is_honored_by_both() {
    for kind in [QueueKind::Wheel, QueueKind::Heap] {
        let mut q = EventQueue::with_kind(kind, 256);
        for i in 0..256u64 {
            q.push(i, i as u32);
        }
        assert_eq!(q.reallocs(), 0, "{kind:?} grew despite with_capacity");
        let mut q0: EventQueue<u32> = EventQueue::with_kind(kind, 0);
        for i in 0..256u64 {
            q0.push(i, i as u32);
        }
        assert!(q0.reallocs() > 0, "{kind:?} reported no growth from zero");
    }
}
