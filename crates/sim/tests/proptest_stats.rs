#![cfg(feature = "proptest")]
//! Requires re-adding `proptest` to this crate's [dev-dependencies].

//! Property tests for the measurement primitives: histogram quantile
//! accuracy against exact computation, and reuse-distance correctness
//! against a quadratic reference.

use proptest::prelude::*;

use fns_sim::stats::{Histogram, ReuseDistance};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram percentiles stay within the promised ~3% relative error of
    /// the exact order statistic, for arbitrary value distributions.
    #[test]
    fn histogram_quantiles_within_error_bound(
        mut values in proptest::collection::vec(1u64..10_000_000, 10..2000),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for p in [10.0, 50.0, 90.0, 99.0] {
            let rank = ((p / 100.0) * values.len() as f64).ceil().max(1.0) as usize - 1;
            let exact = values[rank] as f64;
            let est = h.percentile(p) as f64;
            let err = (est - exact).abs() / exact;
            prop_assert!(err < 0.035, "p{p}: est {est} vs exact {exact} (err {err:.4})");
        }
        prop_assert_eq!(h.min(), values[0]);
        prop_assert_eq!(h.max(), *values.last().unwrap());
        prop_assert_eq!(h.count(), values.len() as u64);
        let exact_mean: f64 = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
        prop_assert!((h.mean() - exact_mean).abs() < 1e-6 * exact_mean.max(1.0));
    }

    /// Merged histograms agree with recording everything into one.
    #[test]
    fn histogram_merge_equals_union(
        a in proptest::collection::vec(1u64..100_000, 1..300),
        b in proptest::collection::vec(1u64..100_000, 1..300),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hu = Histogram::new();
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        prop_assert_eq!(ha.min(), hu.min());
        prop_assert_eq!(ha.max(), hu.max());
        for p in [25.0, 50.0, 75.0, 95.0] {
            prop_assert_eq!(ha.percentile(p), hu.percentile(p));
        }
    }

    /// Fenwick-tree reuse distances match the O(n^2) definition.
    #[test]
    fn reuse_distance_matches_reference(
        keys in proptest::collection::vec(0u64..40, 1..600),
    ) {
        let mut rd = ReuseDistance::new();
        let mut last: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for (i, &k) in keys.iter().enumerate() {
            let got = rd.access(k);
            let expected = last.get(&k).map(|&p| {
                keys[p + 1..i].iter().collect::<std::collections::HashSet<_>>().len() as u64
            });
            prop_assert_eq!(got, expected, "access {}", i);
            last.insert(k, i);
        }
        prop_assert_eq!(rd.len(), keys.len());
    }
}
