//! Integration tests for the extension features: the §5 related-work
//! baselines, the F&S+hugepages future-work mode, descriptor-size
//! generality, and the Figure 10 bidirectional experiment.

use fns::apps::{bidirectional_config, iperf_config};
use fns::core::{HostSim, ProtectionMode, RunMetrics, SimConfig};

fn quick(mut cfg: SimConfig) -> RunMetrics {
    cfg.warmup = 15_000_000;
    cfg.measure = 30_000_000;
    let m = HostSim::new(cfg).run();
    assert_eq!(m.stale_ptcache_walks, 0);
    m
}

#[test]
fn hugepage_pinning_buys_reach_by_weakening_safety() {
    let m = quick(iperf_config(ProtectionMode::HugepagePinned, 40, 256));
    assert!(m.rx_gbps() > 95.0);
    // One IOTLB entry covers 2 MB: essentially no misses.
    assert!(
        m.iotlb_misses_per_page() < 0.05,
        "got {:.3}",
        m.iotlb_misses_per_page()
    );
    assert!(!ProtectionMode::HugepagePinned.is_strict_safe());
    // Pool modes never invalidate anything.
    assert_eq!(m.iommu.invalidation_queue_entries, 0);
}

#[test]
fn damn_recycling_is_fast_in_the_happy_path() {
    // The paper (§5) grants DAMN's performance mechanism while disputing
    // its safety claim: with consumption keeping up, recycled persistent
    // mappings cost nothing per DMA.
    let m = quick(iperf_config(ProtectionMode::DamnRecycle, 40, 256));
    assert!(m.rx_gbps() > 95.0);
    assert_eq!(m.iommu.invalidation_queue_entries, 0);
    assert_eq!(m.iommu.ptcache_l1_misses + m.iommu.ptcache_l2_misses, 0);
    assert!(!ProtectionMode::DamnRecycle.is_strict_safe());
}

#[test]
fn fns_plus_hugepages_cuts_miss_count_with_strict_safety() {
    let fns_m = quick(iperf_config(ProtectionMode::FastAndSafe, 40, 256));
    let huge = quick(iperf_config(ProtectionMode::FnsHugeStrict, 40, 256));
    assert!(huge.rx_gbps() > 95.0);
    assert!(
        huge.iotlb_misses_per_page() < fns_m.iotlb_misses_per_page() / 3.0,
        "hugepages should slash miss count: {:.3} vs {:.3}",
        huge.iotlb_misses_per_page(),
        fns_m.iotlb_misses_per_page()
    );
    assert!(ProtectionMode::FnsHugeStrict.is_strict_safe());
    assert_eq!(huge.stale_iotlb_hits, 0);
    // Invalidations still happen — one per descriptor — unlike the pinned
    // pool modes.
    assert!(huge.iommu.invalidation_queue_entries > 0);
}

#[test]
fn single_page_descriptors_keep_ptcache_wins_lose_batching() {
    // §3's generality argument, as a test.
    let mk = |mode, pages| {
        let mut cfg = iperf_config(mode, 5, 256);
        cfg.pages_per_descriptor = pages;
        quick(cfg)
    };
    let fns64 = mk(ProtectionMode::FastAndSafe, 64);
    let fns1 = mk(ProtectionMode::FastAndSafe, 1);
    // PTcache preservation + cross-descriptor contiguity survive.
    assert_eq!(
        fns1.iommu.ptcache_l1_misses + fns1.iommu.ptcache_l2_misses,
        0
    );
    assert!(fns1.l3_misses_per_page() < 0.054);
    assert!(fns1.rx_gbps() > 90.0);
    // Batched invalidation does not: one queue entry per descriptor.
    assert!(
        fns1.iommu.invalidation_queue_entries > 5 * fns64.iommu.invalidation_queue_entries,
        "{} vs {}",
        fns1.iommu.invalidation_queue_entries,
        fns64.iommu.invalidation_queue_entries
    );
}

#[test]
fn bidirectional_interference_shapes() {
    // Figure 10 at n = 4: Linux Rx collapses hardest, Tx less (PCIe reads
    // tolerate latency), F&S recovers both directions.
    // Needs the full Figure 10 window: the bidirectional equilibrium takes
    // tens of milliseconds to settle.
    let run = |mode| {
        let m = HostSim::new(bidirectional_config(mode, 4)).run();
        assert_eq!(m.stale_ptcache_walks, 0);
        m
    };
    let off = run(ProtectionMode::IommuOff);
    let linux = run(ProtectionMode::LinuxStrict);
    let fns_m = run(ProtectionMode::FastAndSafe);
    assert!(
        linux.rx_gbps() < 0.8 * off.rx_gbps(),
        "linux rx {:.1} vs off {:.1}",
        linux.rx_gbps(),
        off.rx_gbps()
    );
    let rx_deg = 1.0 - linux.rx_gbps() / off.rx_gbps();
    let tx_deg = 1.0 - linux.tx_gbps() / off.tx_gbps();
    assert!(
        tx_deg < rx_deg,
        "Tx should degrade less: rx {rx_deg:.2} vs tx {tx_deg:.2}"
    );
    assert!(
        fns_m.rx_gbps() > 0.85 * off.rx_gbps(),
        "F&S rx {:.1} vs off {:.1}",
        fns_m.rx_gbps(),
        off.rx_gbps()
    );
}

#[test]
fn every_mode_is_deterministic() {
    for mode in ProtectionMode::ALL {
        let mut cfg = iperf_config(mode, 5, 256);
        cfg.warmup = 5_000_000;
        cfg.measure = 10_000_000;
        let a = HostSim::new(cfg).run();
        let b = HostSim::new(cfg).run();
        assert_eq!(a.rx_goodput_bytes, b.rx_goodput_bytes, "{mode}");
        assert_eq!(a.iommu, b.iommu, "{mode}");
    }
}
