//! Telemetry-plane integration: CPU-span attribution must reconcile with
//! the legacy CPU counters, traced runs must not perturb the simulation,
//! and the Chrome-JSON export must be byte-identical at any worker count.

use fns::apps::iperf_config;
use fns::core::{HostSim, ProtectionMode, RunMetrics, SimConfig};
use fns::faults::{FaultConfig, FaultKind};
use fns::harness::SweepRunner;
use fns::trace::{chrome_trace_json, ProbeConfig, TraceConfig};

fn short(mut cfg: SimConfig) -> SimConfig {
    cfg.warmup = 2_000_000;
    cfg.measure = 5_000_000;
    cfg
}

/// Fig2-shaped point with full telemetry enabled.
fn traced(mode: ProtectionMode, flows: u32) -> SimConfig {
    let mut cfg = short(iperf_config(mode, flows, 256));
    cfg.trace = TraceConfig::all();
    cfg.probes = ProbeConfig::every(100_000);
    cfg
}

#[test]
fn span_totals_reconcile_with_legacy_cpu_counters() {
    // The span table is a decomposition of the whole-run datapath CPU
    // counters, not a new measurement: its total must equal `map_cpu_ns`
    // exactly, and the invalidation-side spans must equal
    // `invalidation_cpu_ns` exactly, on every mode that does any mapping.
    for mode in [
        ProtectionMode::LinuxStrict,
        ProtectionMode::LinuxDeferred,
        ProtectionMode::FastAndSafe,
        ProtectionMode::DamnRecycle,
    ] {
        let m = HostSim::new(short(iperf_config(mode, 5, 256))).run();
        assert!(m.map_cpu_ns > 0, "{mode:?}: no datapath CPU recorded");
        assert_eq!(
            m.spans.total_ns(),
            m.map_cpu_ns,
            "{mode:?}: span total diverged from map_cpu_ns"
        );
        assert_eq!(
            m.spans.invalidation_ns(),
            m.invalidation_cpu_ns,
            "{mode:?}: invalidation spans diverged from invalidation_cpu_ns"
        );
    }
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    // Identical configs with and without telemetry must agree on every
    // simulated outcome; only the observability fields may differ.
    let base = short(iperf_config(ProtectionMode::FastAndSafe, 5, 256));
    let plain = HostSim::new(base).run();
    let observed = HostSim::new(traced(ProtectionMode::FastAndSafe, 5)).run();
    assert!(!observed.trace.is_empty(), "traced run recorded nothing");
    assert!(
        !observed.samples.samples.is_empty(),
        "probed run recorded no samples"
    );
    // The gauge probes are themselves events, so the traced run processes
    // exactly one extra event per recorded sample — and nothing else.
    assert_eq!(
        observed.events_processed,
        plain.events_processed + observed.samples.samples.len() as u64,
        "probe events do not account for the event-count difference"
    );
    let scrub = |m: &RunMetrics| {
        let mut m = m.clone();
        m.trace = Default::default();
        m.samples = Default::default();
        m.events_processed = 0;
        m
    };
    assert_eq!(
        scrub(&plain),
        scrub(&observed),
        "telemetry perturbed the simulation"
    );
}

#[test]
fn disabled_tracing_records_nothing() {
    let m = HostSim::new(short(iperf_config(ProtectionMode::LinuxStrict, 5, 256))).run();
    assert!(m.trace.is_empty());
    assert_eq!(m.trace.dropped, 0);
    assert!(m.samples.samples.is_empty());
    assert!(m.fault_log.is_empty());
}

#[test]
fn fault_log_is_a_view_of_the_trace() {
    // Fault-injected runs route records through the trace recorder even
    // when no tracing was requested; the legacy fault log is recovered as
    // a filtered view and stays consistent with the fault counters.
    let mut cfg = short(iperf_config(ProtectionMode::LinuxStrict, 2, 64));
    cfg.cores = 2;
    cfg.aging_factor = 0.0;
    cfg.faults = FaultConfig::uniform(0.02);
    let m = HostSim::new(cfg).run();
    assert!(!m.fault_log.is_empty(), "no faults fired");
    assert_eq!(
        m.fault_log.len() as u64 + m.trace.dropped,
        m.faults.total_injected(),
        "fault log diverged from injection counters"
    );
    // Chronological: the interleaved driver/wire view must be time-sorted,
    // which falls out of the underlying trace being time-sorted.
    assert!(
        m.trace.events.windows(2).all(|w| w[0].at <= w[1].at),
        "trace (and hence the fault log) not in chronological order"
    );
}

#[test]
fn chrome_json_is_byte_identical_across_worker_counts() {
    let configs = vec![
        traced(ProtectionMode::IommuOff, 5),
        traced(ProtectionMode::LinuxStrict, 5),
        traced(ProtectionMode::FastAndSafe, 20),
    ];
    let kinds: Vec<&str> = FaultKind::ALL.iter().map(|k| k.name()).collect();
    let render = |results: &[RunMetrics]| -> Vec<String> {
        results
            .iter()
            .map(|m| chrome_trace_json(&m.trace, &m.samples, &kinds))
            .collect()
    };
    let golden = render(&SweepRunner::new(1).run_sims(configs.clone()));
    assert!(golden.iter().all(|j| j.len() > 2), "empty trace JSON");
    let wide = render(&SweepRunner::new(8).run_sims(configs));
    assert_eq!(golden, wide, "trace JSON diverged across worker counts");
}
