//! Causal-observability acceptance: a sabotaged run must produce a
//! failure artifact whose page timeline names the skipped invalidation,
//! and the CLI must reproduce the same explanation end to end.

use std::process::Command;

use fns::apps::iperf_config;
use fns::core::{HostSim, ProtectionMode, Sabotage, SimConfig};
use fns::oracle::AuditConfig;
use fns::trace::ObserveConfig;

/// The tiny audited shape the soak bisect test already proved trips a
/// violation under `SkipRangeInvalidation { nth: 500 }`.
fn sabotage_shape(mode: ProtectionMode) -> SimConfig {
    let mut cfg = iperf_config(mode, 2, 64);
    cfg.cores = 2;
    cfg.warmup = 500_000;
    cfg.measure = 2_000_000;
    cfg.aging_factor = 0.0;
    cfg.audit = AuditConfig {
        enabled: true,
        fatal: false,
    };
    cfg.observe.provenance = true;
    cfg
}

#[test]
fn sabotaged_run_explains_the_skipped_invalidation() {
    let cfg = sabotage_shape(ProtectionMode::LinuxStrict);
    let mut sim = HostSim::new(cfg);
    sim.set_sabotage(Sabotage::SkipRangeInvalidation { nth: 500 });
    let m = sim.run();
    assert!(
        m.audit.violations > 0,
        "sabotage produced no violation; tune nth"
    );
    let pfns = m.audit.violating_pfns();
    assert!(!pfns.is_empty(), "violations without anchored pfns");
    // Every violating page's timeline must name the dropped invalidation:
    // this is the causal chain the observability plane exists to close.
    for pfn in pfns {
        let text = m.provenance.explain(pfn);
        assert!(
            text.contains("inv-SKIPPED"),
            "pfn {pfn:#x} timeline misses the skip:\n{text}"
        );
        assert!(
            text.contains("submission ordinal 500"),
            "pfn {pfn:#x} timeline misses the ordinal:\n{text}"
        );
    }
}

#[test]
fn live_sim_explains_a_page_before_collection() {
    // `HostSim::explain_page` is the crash-path variant (the CLI uses it
    // while the sim still exists): it must agree with the end-of-run dump.
    let cfg = sabotage_shape(ProtectionMode::LinuxStrict);
    let mut sim = HostSim::new(cfg);
    sim.set_sabotage(Sabotage::SkipRangeInvalidation { nth: 500 });
    sim.step_until(cfg.end_time());
    let pfns = sim.violating_pfns();
    assert!(!pfns.is_empty(), "no violations at end of stepped run");
    let live = sim
        .explain_page(pfns[0])
        .expect("provenance armed but explain_page returned None");
    let dumped = sim.finish().provenance.explain(pfns[0]);
    assert_eq!(live, dumped, "live explanation diverged from the dump");
}

#[test]
fn observe_off_keeps_every_dump_empty() {
    let mut cfg = sabotage_shape(ProtectionMode::LinuxStrict);
    cfg.observe = ObserveConfig::off();
    let m = HostSim::new(cfg).run();
    assert!(!m.provenance.enabled && m.provenance.pages.is_empty());
    assert!(!m.txns.enabled && m.txns.records.is_empty());
    assert!(!m.registry.enabled && m.registry.stats.is_empty());
    assert!(m.flight.is_empty());
}

#[test]
fn cli_reproduces_the_violation_and_its_provenance() {
    // End-to-end through the binary: the sabotaged audited run must exit 1,
    // print the skip in the `--explain-page violation` timeline, and leave
    // the failure artifact behind.
    let dir = std::env::temp_dir().join(format!("fns-obs-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let out = Command::new(env!("CARGO_BIN_EXE_fns-sim"))
        .current_dir(&dir)
        .args([
            "--mode",
            "linux",
            "--flows",
            "2",
            "--ring",
            "64",
            "--cores",
            "2",
            "--measure-ms",
            "2",
            "--audit",
            "--sabotage-skip-inv",
            "20000",
            "--explain-page",
            "violation",
        ])
        .output()
        .expect("fns-sim runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(1),
        "audited sabotage must exit 1\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("inv-SKIPPED") && stdout.contains("submission ordinal 20000"),
        "explain output misses the skip:\n{stdout}"
    );
    let artifact = dir.join("target/failure_provenance.txt");
    let text = std::fs::read_to_string(&artifact).expect("failure artifact written");
    assert!(
        text.contains("inv-SKIPPED"),
        "artifact misses the skip:\n{text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_flight_recorder_writes_valid_chrome_json() {
    let dir = std::env::temp_dir().join(format!("fns-flight-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("flight.json");
    let out = Command::new(env!("CARGO_BIN_EXE_fns-sim"))
        .current_dir(&dir)
        .args([
            "--mode",
            "fns",
            "--flows",
            "2",
            "--ring",
            "64",
            "--cores",
            "2",
            "--measure-ms",
            "2",
            "--flight",
        ])
        .arg(&path)
        .output()
        .expect("fns-sim runs");
    assert!(out.status.success(), "flight run failed");
    let json = std::fs::read_to_string(&path).expect("flight file written");
    assert!(
        json.starts_with("{\"traceEvents\":["),
        "not a Chrome trace: {}",
        &json[..json.len().min(80)]
    );
    assert!(
        json.contains("\"ph\""),
        "flight ring captured no events (wants() gating regressed?)"
    );
    std::fs::remove_dir_all(&dir).ok();
}
