//! Replays the checked-in violation corpus against the oracle.
//!
//! Each file under `tests/corpus/` is a ddmin-minimized op trace plus the
//! seeded driver bug ([`Sabotage`]) that produced it and the invariant it
//! must trip (regenerate with `cargo run --example shrink_corpus`). The
//! tests prove two directions:
//!
//! * **the bug is caught** — replaying the trace with its sabotage armed
//!   still violates exactly the expected invariant class, so an oracle
//!   refactor cannot silently stop detecting it;
//! * **the guard is the cause** — replaying the same trace with the
//!   sabotage disarmed is violation-free, so the corpus never encodes a
//!   false positive.

use fns::core::Sabotage;
use fns::harness::mbt::{generate, replay, shrink, violates, CorpusCase, MbtConfig};
use fns::oracle::Invariant;

const CORPUS: &[&str] = &[
    "skip_inval_fns.txt",
    "skip_inval_linux_strict.txt",
    "skip_reclaim_fixup.txt",
    "skip_deferred_flush.txt",
    "skip_inval_huge.txt",
    "cross_domain_leak.txt",
    "skip_domain_scoped_inval.txt",
];

fn load(file: &str) -> CorpusCase {
    let path = format!("{}/tests/corpus/{file}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing corpus file {path}: {e}"));
    CorpusCase::parse(&text).unwrap_or_else(|e| panic!("malformed corpus file {path}: {e}"))
}

#[test]
fn every_corpus_trace_reproduces_its_violation() {
    for file in CORPUS {
        let case = load(file);
        let report = replay(case.cfg, &case.ops);
        assert!(
            violates(&report, Some(case.expect)),
            "{file}: sabotaged replay no longer violates {} ({})",
            case.expect.name(),
            report.summary()
        );
        assert!(
            case.ops.len() <= 20,
            "{file}: corpus trace has grown to {} ops — re-shrink it",
            case.ops.len()
        );
    }
}

#[test]
fn every_corpus_trace_is_clean_without_its_sabotage() {
    for file in CORPUS {
        let case = load(file);
        assert_ne!(case.cfg.sabotage, Sabotage::None, "{file}: no sabotage?");
        let clean_cfg = MbtConfig {
            sabotage: Sabotage::None,
            ..case.cfg
        };
        let report = replay(clean_cfg, &case.ops);
        assert!(
            report.is_clean(),
            "{file}: violates even without its sabotage — false positive: {:?}",
            report.samples.first()
        );
    }
}

/// The corpus spans more than one invariant class — a regression that
/// collapsed detection to a single class would still pass per-file checks.
#[test]
fn corpus_covers_multiple_invariant_classes() {
    let classes: std::collections::BTreeSet<&'static str> =
        CORPUS.iter().map(|f| load(f).expect.name()).collect();
    assert!(
        classes.len() >= 2,
        "corpus only covers {classes:?} — add another class"
    );
    assert!(
        classes.contains("cross-domain-isolation"),
        "corpus lost its multi-tenant reproducers: {classes:?}"
    );
}

/// The acceptance check, end to end: arm a fresh seeded bug (not one of
/// the corpus seeds), confirm the oracle catches it on a random trace,
/// and confirm the shrinker reduces the reproducer to at most 20 ops.
#[test]
fn fresh_seeded_bug_is_caught_and_shrinks_to_at_most_20_ops() {
    let cfg = MbtConfig {
        sabotage: Sabotage::SkipRangeInvalidation { nth: 2 },
        ..MbtConfig::for_mode(fns::core::ProtectionMode::LinuxContig)
    };
    let ops = generate(0xFEED, 200);
    let report = replay(cfg, &ops);
    assert!(
        violates(&report, Some(Invariant::InvalidationCompleteness)),
        "seeded bug went unnoticed: {}",
        report.summary()
    );
    let small = shrink(cfg, &ops, Some(Invariant::InvalidationCompleteness));
    assert!(
        violates(
            &replay(cfg, &small),
            Some(Invariant::InvalidationCompleteness)
        ),
        "shrunk trace no longer violates"
    );
    assert!(
        small.len() <= 20,
        "shrunk reproducer still has {} ops",
        small.len()
    );
}
