//! Cross-crate integration tests: the paper's headline results must hold.
//!
//! These are the load-bearing claims of the reproduction, checked as
//! *shapes* (who wins, roughly by how much) rather than absolute numbers.
//! Runs use shortened windows to keep the suite fast; the full-length
//! figures live in `fns-bench`.

use fns::apps::{iperf_config, redis_config, rpc_config};
use fns::core::{HostSim, ProtectionMode, RunMetrics, SimConfig};
use fns::harness::SweepRunner;

fn quick(mut cfg: SimConfig) -> RunMetrics {
    cfg.warmup = 15_000_000;
    cfg.measure = 30_000_000;
    let m = HostSim::new(cfg).run();
    // Universal invariants: no use-after-free walks ever; no stale IOTLB
    // hits in strict-safe modes.
    assert_eq!(m.stale_ptcache_walks, 0);
    m
}

/// Multi-run variant of [`quick`]: the whole batch goes through the sweep
/// runner (results in submission order), with the same shortened windows
/// and universal invariants.
fn quick_all<const N: usize>(configs: [SimConfig; N]) -> [RunMetrics; N] {
    let shortened = configs
        .into_iter()
        .map(|mut cfg| {
            cfg.warmup = 15_000_000;
            cfg.measure = 30_000_000;
            cfg
        })
        .collect();
    let results = SweepRunner::from_env().run_sims(shortened);
    for m in &results {
        assert_eq!(m.stale_ptcache_walks, 0);
    }
    results
        .try_into()
        .expect("runner returns one result per config")
}

#[test]
fn iommu_off_saturates_the_link() {
    let m = quick(iperf_config(ProtectionMode::IommuOff, 5, 256));
    assert!(m.rx_gbps() > 95.0, "got {:.1} Gbps", m.rx_gbps());
    assert_eq!(m.iommu.translations, 0);
}

#[test]
fn linux_strict_degrades_throughput() {
    let m = quick(iperf_config(ProtectionMode::LinuxStrict, 5, 256));
    assert_eq!(m.stale_iotlb_hits, 0, "strict mode must be safe");
    assert!(
        m.rx_gbps() < 90.0 && m.rx_gbps() > 40.0,
        "expected 20-60% degradation, got {:.1} Gbps",
        m.rx_gbps()
    );
    // At least one IOTLB miss per page is fundamental under strict unmap.
    assert!(m.iotlb_misses_per_page() >= 1.0);
    // Linux's invalidations leave PTcache misses on the table.
    assert!(m.l3_misses_per_page() > 0.1);
}

#[test]
fn fns_matches_iommu_off_with_strict_safety() {
    let m = quick(iperf_config(ProtectionMode::FastAndSafe, 5, 256));
    assert_eq!(m.stale_iotlb_hits, 0, "F&S must be strictly safe");
    assert!(m.rx_gbps() > 95.0, "got {:.1} Gbps", m.rx_gbps());
    // Still at least one (unavoidable) IOTLB miss per page...
    assert!(m.iotlb_misses_per_page() >= 1.0);
    // ...but the cost per miss is ~1 memory read, not ~2-4.
    assert_eq!(m.iommu.ptcache_l1_misses, 0);
    assert_eq!(m.iommu.ptcache_l2_misses, 0);
    assert!(
        m.l3_misses_per_page() < 0.054,
        "paper bound: {:.3}",
        m.l3_misses_per_page()
    );
    let per_walk = m.iommu.memory_reads as f64 / m.iommu.iotlb_misses.max(1) as f64;
    assert!(
        per_walk < 1.1,
        "F&S walk cost should be ~1 read, got {per_walk:.2}"
    );
}

#[test]
fn degradation_grows_with_flow_count() {
    let [m5, m40] = quick_all([
        iperf_config(ProtectionMode::LinuxStrict, 5, 256),
        iperf_config(ProtectionMode::LinuxStrict, 40, 256),
    ]);
    assert!(
        m40.rx_gbps() < m5.rx_gbps() - 5.0,
        "40 flows ({:.1}) should be clearly worse than 5 ({:.1})",
        m40.rx_gbps(),
        m5.rx_gbps()
    );
    // The causal chain: more drops -> more ACKs -> more misses.
    assert!(m40.drop_rate() > m5.drop_rate());
    assert!(m40.tx_packets_per_page() > 2.0 * m5.tx_packets_per_page());
    assert!(m40.memory_reads_per_page() > m5.memory_reads_per_page());
}

#[test]
fn fns_is_flat_across_flow_counts() {
    let m40 = quick(iperf_config(ProtectionMode::FastAndSafe, 40, 256));
    assert!(m40.rx_gbps() > 93.0, "got {:.1} Gbps", m40.rx_gbps());
    assert_eq!(m40.iommu.ptcache_l1_misses + m40.iommu.ptcache_l2_misses, 0);
}

#[test]
fn locality_worsens_with_ring_size_for_linux_only() {
    let [small, large, fns_large] = quick_all([
        iperf_config(ProtectionMode::LinuxStrict, 5, 256),
        iperf_config(ProtectionMode::LinuxStrict, 5, 2048),
        iperf_config(ProtectionMode::FastAndSafe, 5, 2048),
    ]);
    assert!(
        large.locality_mean() > 2.0 * small.locality_mean(),
        "ring 2048 locality {:.1} vs ring 256 {:.1}",
        large.locality_mean(),
        small.locality_mean()
    );
    assert!(
        fns_large.locality_mean() < 2.0,
        "F&S locality must stay per-descriptor bounded, got {:.2}",
        fns_large.locality_mean()
    );
}

#[test]
fn deferred_mode_is_fast_because_it_skips_invalidations() {
    // Lazy mode trades the strict safety property for speed: invalidations
    // are batched ~256 pages at a time instead of per unmap. A benign NIC
    // never exploits the stale window (so no violations fire here — the
    // exploitable window itself is demonstrated in the fns-core driver
    // unit tests); the performance side is what this checks.
    let [lazy, strict] = quick_all([
        iperf_config(ProtectionMode::LinuxDeferred, 5, 256),
        iperf_config(ProtectionMode::LinuxStrict, 5, 256),
    ]);
    assert!(lazy.rx_gbps() > 90.0, "got {:.1} Gbps", lazy.rx_gbps());
    assert!(
        lazy.iommu.invalidation_queue_entries * 10 < strict.iommu.invalidation_queue_entries,
        "lazy mode must batch invalidations: {} vs {}",
        lazy.iommu.invalidation_queue_entries,
        strict.iommu.invalidation_queue_entries
    );
    assert!(!ProtectionMode::LinuxDeferred.is_strict_safe());
}

#[test]
fn rpc_tail_latency_story() {
    // Uses the full Figure 9 window: RTO-driven tail events are rare, so a
    // shortened run can miss them entirely.
    let results = SweepRunner::from_env().run_sims(vec![
        rpc_config(ProtectionMode::LinuxStrict, 4096),
        rpc_config(ProtectionMode::FastAndSafe, 4096),
    ]);
    let [linux, fns_m]: [RunMetrics; 2] = results.try_into().expect("two runs");
    assert!(linux.latency.count() > 100);
    assert!(fns_m.latency.count() > 100);
    // Stock protection: P99.9 inflated into the milliseconds by RTOs.
    assert!(
        linux.latency.percentile(99.9) > 1_000_000,
        "expected ms-scale tail, got {} ns",
        linux.latency.percentile(99.9)
    );
    // F&S keeps the whole distribution in the microseconds.
    assert!(
        fns_m.latency.percentile(99.9) < 300_000,
        "F&S P99.9 {} ns",
        fns_m.latency.percentile(99.9)
    );
}

#[test]
fn ablation_ordering_holds() {
    // Figure 12: each F&S idea alone is insufficient.
    let [linux, a, b, fns_g, off] = quick_all([
        redis_config(ProtectionMode::LinuxStrict, 8 << 10),
        redis_config(ProtectionMode::LinuxPreserve, 8 << 10),
        redis_config(ProtectionMode::LinuxContig, 8 << 10),
        redis_config(ProtectionMode::FastAndSafe, 8 << 10),
        redis_config(ProtectionMode::IommuOff, 8 << 10),
    ])
    .map(|m| m.rx_gbps());
    assert!(linux < fns_g, "linux {linux:.1} vs F&S {fns_g:.1}");
    assert!(
        a < fns_g - 1.0,
        "A alone must not reach F&S: {a:.1} vs {fns_g:.1}"
    );
    assert!(a > linux - 2.0, "A should not hurt: {a:.1} vs {linux:.1}");
    assert!(
        b <= fns_g + 1.0,
        "B alone at most F&S: {b:.1} vs {fns_g:.1}"
    );
    assert!(fns_g > 0.9 * off, "F&S ~ IOMMU off: {fns_g:.1} vs {off:.1}");
}

#[test]
fn deterministic_across_runs() {
    let a = quick(iperf_config(ProtectionMode::LinuxStrict, 5, 256));
    let b = quick(iperf_config(ProtectionMode::LinuxStrict, 5, 256));
    assert_eq!(a.rx_goodput_bytes, b.rx_goodput_bytes);
    assert_eq!(a.iommu, b.iommu);
    let mut seeded = iperf_config(ProtectionMode::LinuxStrict, 5, 256);
    seeded.seed = 99;
    let c = quick(seeded);
    assert_ne!(
        a.iommu.translations, c.iommu.translations,
        "different seeds should perturb the run"
    );
}
