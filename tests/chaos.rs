//! Chaos harness: the safety invariant must survive every fault mix.
//!
//! These tests sweep injected fault probabilities across protection modes
//! and assert the properties the fault plane is designed to guarantee:
//!
//! * **Safety**: no DMA translation ever succeeds after an unmap in a
//!   strict-safe mode, no matter which faults fire (`stale_dma_leaked`,
//!   `stale_iotlb_hits` stay 0).
//! * **Determinism**: a fixed seed gives bit-identical runs, faults
//!   included — the planes own forked RNG streams.
//! * **Accounting**: the injection log reconciles with the counters, so
//!   no fault is silently swallowed.
//!
//! Windows are tiny: chaos runs measure invariants, not throughput.

use fns::apps::iperf_config;
use fns::core::{HostSim, ProtectionMode, RunMetrics, SimConfig};
use fns::faults::{FaultConfig, FaultKind};
use fns::harness::SweepRunner;

/// A small, fast configuration: 2 cores, 2 flows, short windows, no
/// allocator aging (aging is irrelevant to fault handling and dominates
/// short runs).
fn chaos_config(mode: ProtectionMode, faults: FaultConfig) -> SimConfig {
    let mut cfg = iperf_config(mode, 2, 64);
    cfg.cores = 2;
    cfg.warmup = 500_000;
    cfg.measure = 2_000_000;
    cfg.aging_factor = 0.0;
    cfg.faults = faults;
    cfg
}

fn run(mode: ProtectionMode, faults: FaultConfig) -> RunMetrics {
    HostSim::new(chaos_config(mode, faults)).run()
}

/// Sweep uniform fault probabilities across strict-safe modes: whatever
/// mix of ring overruns, exhaustions, stalls, and packet mangling fires,
/// no stale DMA may ever translate successfully.
#[test]
fn safety_invariant_survives_every_fault_mix() {
    let probabilities = [0.0, 0.001, 0.01, 0.05];
    let modes = [ProtectionMode::LinuxStrict, ProtectionMode::FastAndSafe];
    let mut points = Vec::new();
    let mut configs = Vec::new();
    for &p in &probabilities {
        for mode in modes {
            points.push((p, mode));
            configs.push(chaos_config(mode, FaultConfig::uniform(p)));
        }
    }
    let results = SweepRunner::from_env().run_sims(configs);
    for ((p, mode), m) in points.into_iter().zip(results) {
        assert_eq!(m.stale_iotlb_hits, 0, "{mode} p={p}: stale IOTLB hit");
        assert_eq!(m.stale_ptcache_walks, 0, "{mode} p={p}: stale walk");
        assert_eq!(
            m.faults.stale_dma_blocked + m.faults.stale_dma_leaked,
            m.faults.injected_of(FaultKind::TranslationFault),
            "{mode} p={p}: every stale-DMA probe must be accounted"
        );
        assert_eq!(
            m.faults.stale_dma_leaked, 0,
            "{mode} p={p}: device reached an unmapped IOVA"
        );
        if p >= 0.01 {
            assert!(
                m.faults.total_injected() > 0,
                "{mode} p={p}: the plane never fired"
            );
        }
        if p == 0.0 {
            assert_eq!(m.faults.total_injected(), 0);
            assert!(m.fault_log.is_empty());
        }
    }
}

/// The run must keep making progress under a heavy fault mix: recovery,
/// not collapse.
#[test]
fn goodput_survives_heavy_faults() {
    let m = run(ProtectionMode::FastAndSafe, FaultConfig::uniform(0.05));
    assert!(
        m.rx_goodput_bytes > 0,
        "no goodput at all under 5% faults: recovery is broken"
    );
    assert!(
        m.faults.total_recovered() > 0,
        "faults fired but nothing recovered"
    );
}

/// Every injection shows up once in the log, and the log agrees with the
/// per-kind counters.
#[test]
fn counters_reconcile_with_the_injection_log() {
    let m = run(ProtectionMode::FastAndSafe, FaultConfig::uniform(0.02));
    assert!(m.faults.total_injected() > 0, "plane never fired");
    assert_eq!(
        m.faults.total_injected(),
        m.fault_log.len() as u64,
        "log and counters disagree"
    );
    for kind in FaultKind::ALL {
        let logged = m.fault_log.iter().filter(|r| r.kind == kind).count() as u64;
        assert_eq!(logged, m.faults.injected_of(kind), "{kind}");
    }
}

/// Two runs with the same seed and the same fault mix are bit-identical —
/// the chaos plane is as reproducible as the rest of the simulation.
#[test]
fn fixed_seed_chaos_runs_are_deterministic() {
    let a = run(ProtectionMode::FastAndSafe, FaultConfig::uniform(0.02));
    let b = run(ProtectionMode::FastAndSafe, FaultConfig::uniform(0.02));
    assert_eq!(a.rx_goodput_bytes, b.rx_goodput_bytes);
    assert_eq!(a.tx_goodput_bytes, b.tx_goodput_bytes);
    assert_eq!(a.rx_packets, b.rx_packets);
    assert_eq!(a.nic_drops, b.nic_drops);
    assert_eq!(a.tx_packets, b.tx_packets);
    assert_eq!(a.iommu, b.iommu);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.fault_log, b.fault_log);
}

/// Enabling the fault plane with all-zero probabilities must not perturb
/// the baseline trajectory: a disabled plane consumes no RNG draws.
#[test]
fn zero_probability_plane_matches_disabled_baseline() {
    let base = run(ProtectionMode::LinuxStrict, FaultConfig::disabled());
    let zero = run(ProtectionMode::LinuxStrict, FaultConfig::uniform(0.0));
    assert_eq!(base.rx_goodput_bytes, zero.rx_goodput_bytes);
    assert_eq!(base.iommu, zero.iommu);
    assert_eq!(zero.faults.total_injected(), 0);
}

/// Persistent invalidation-queue stalls must degrade batched range
/// invalidation to per-page replay — and the degraded path must still
/// uphold strict safety.
#[test]
fn invalidation_stalls_degrade_to_per_page_and_stay_safe() {
    let cfg = FaultConfig::disabled().with(FaultKind::InvalidationTimeout, 0.9);
    let m = run(ProtectionMode::FastAndSafe, cfg);
    assert!(
        m.faults.injected_of(FaultKind::InvalidationTimeout) > 0,
        "stalls never fired"
    );
    assert!(m.faults.invalidation_retries > 0, "no backoff retries");
    assert!(
        m.faults.batch_fallbacks > 0,
        "persistent stalls never degraded a batch to per-page replay"
    );
    assert_eq!(m.stale_iotlb_hits, 0, "degraded path must stay safe");
    assert!(m.rx_goodput_bytes > 0, "stalls starved the run entirely");
}

/// Ring overruns recycle the refused descriptor instead of leaking it:
/// the run keeps replenishing and the recycle counter tracks recoveries.
#[test]
fn ring_overruns_recycle_descriptors() {
    let cfg = FaultConfig::disabled().with(FaultKind::RingOverrun, 0.2);
    let m = run(ProtectionMode::LinuxStrict, cfg);
    let injected = m.faults.injected_of(FaultKind::RingOverrun);
    assert!(injected > 0, "overruns never fired");
    assert_eq!(
        m.faults.descriptor_recycles,
        m.faults.recovered_of(FaultKind::RingOverrun),
        "every overrun recovery is a descriptor recycle"
    );
    assert_eq!(
        m.faults.descriptor_recycles, injected,
        "a refused descriptor must be recycled, not leaked"
    );
    assert!(m.rx_goodput_bytes > 0);
}

/// Config with an IOTLB so large nothing is ever evicted: any blocked
/// probe is then blocked by *invalidation*, not by capacity-eviction luck.
fn probe_config(mode: ProtectionMode) -> SimConfig {
    let faults = FaultConfig::disabled().with(FaultKind::TranslationFault, 0.5);
    let mut cfg = chaos_config(mode, faults);
    cfg.iommu.iotlb_entries = 1 << 16;
    cfg
}

fn probe_run(mode: ProtectionMode) -> RunMetrics {
    HostSim::new(probe_config(mode)).run()
}

/// Strict modes block every stale-DMA probe, even when the IOTLB never
/// evicts anything — the synchronous invalidation is what closes the
/// window.
#[test]
fn strict_modes_block_stale_dma_probes() {
    let modes = [ProtectionMode::LinuxStrict, ProtectionMode::FastAndSafe];
    let results =
        SweepRunner::from_env().run_sims(modes.iter().map(|&m| probe_config(m)).collect());
    for (mode, m) in modes.into_iter().zip(results) {
        assert!(m.faults.stale_dma_blocked > 0, "{mode}: no probes ran");
        assert_eq!(m.faults.stale_dma_leaked, 0, "{mode}: probe leaked");
        assert_eq!(m.stale_iotlb_hits, 0, "{mode}");
    }
}

/// Honest reporting in non-strict modes: with the same never-evicting
/// IOTLB, deferred invalidation windows are visible to the stale-DMA
/// probes rather than papered over.
#[test]
fn deferred_mode_exposes_its_unsafety_window() {
    let m = probe_run(ProtectionMode::LinuxDeferred);
    let probes = m.faults.stale_dma_blocked + m.faults.stale_dma_leaked;
    assert!(probes > 0, "no probes ran");
    assert!(
        m.faults.stale_dma_leaked > 0,
        "deferred mode should leak stale translations between flushes"
    );
}

/// A snapshot taken *mid-drain* — while the driver's pending-wipe ring
/// holds queued-but-unretired PTcache wipe epochs — must restore
/// bit-identically. The coalesced invalidation batch-drain keeps that
/// ring populated between completions and the next translation, so this
/// pins the in-flight drain state (requests plus epoch boundaries)
/// through the snapshot codec rather than hoping a fixed timestamp lands
/// on a non-empty ring.
#[test]
fn mid_drain_snapshot_restores_with_pending_wipes_in_flight() {
    // LinuxStrict queues a leaf-PTcache wipe per completed page, so the
    // ring refills constantly; FastAndSafe preserves the PTcache and its
    // ring stays empty — strict is the interesting case here.
    let cfg = chaos_config(ProtectionMode::LinuxStrict, FaultConfig::disabled());
    assert!(
        cfg.coalesce_inv_drain,
        "coalesced drain must be on by default"
    );
    let golden = HostSim::new(cfg).run();

    // Walk the run in small steps until the pending ring is non-empty,
    // then snapshot right there.
    let mut sim = HostSim::new(cfg);
    let mut at = 0;
    while sim.pending_wipe_epochs() == 0 {
        at += 10_000;
        assert!(
            at <= cfg.warmup + cfg.measure,
            "pending-wipe ring never became non-empty in a strict run"
        );
        sim.step_until(at);
    }
    let pending = sim.pending_wipe_epochs();
    assert!(pending > 0);
    let bytes = sim.snapshot();
    drop(sim);

    let resumed = HostSim::restore(cfg, &bytes).expect("mid-drain snapshot restores");
    assert_eq!(
        resumed.pending_wipe_epochs(),
        pending,
        "restore dropped or invented pending wipe epochs"
    );
    let resumed = resumed.run();
    assert_eq!(golden, resumed, "mid-drain snapshot diverged at t={at}");
}

/// A fault-heavy run snapshotted mid-recovery (retries, backoffs, and
/// descriptor recycles in flight) restores bit-identically: the recovery
/// ladders' state rides inside the snapshot like everything else, and the
/// chronological fault log of the resumed run matches the uninterrupted
/// one entry for entry.
#[test]
fn mid_recovery_snapshot_restores_bit_identically() {
    for mode in [ProtectionMode::LinuxStrict, ProtectionMode::FastAndSafe] {
        let cfg = chaos_config(mode, FaultConfig::uniform(0.05));
        let golden = HostSim::new(cfg).run();
        assert!(
            golden.faults.total_injected() > 0,
            "{mode}: fault plane never fired"
        );
        // Snapshot at several points across the run — early, mid-warmup
        // churn, and deep in the measured window — so at least one lands
        // with recoveries in flight.
        for at in [300_000, 1_200_000, 2_100_000] {
            let mut sim = HostSim::new(cfg);
            sim.step_until(at);
            let bytes = sim.snapshot();
            drop(sim);
            let resumed = HostSim::restore(cfg, &bytes)
                .expect("chaos snapshot restores")
                .run();
            assert_eq!(
                golden.fault_log, resumed.fault_log,
                "{mode}: fault log diverged after restore at t={at}"
            );
            assert_eq!(golden, resumed, "{mode}: metrics diverged at t={at}");
        }
    }
}
