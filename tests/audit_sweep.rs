//! Oracle-enabled sweep: every mode × every scenario × two seeds (plus a
//! chaos basket) must finish with zero safety-invariant violations.
//!
//! This is the repo's correctness gate: any change to the allocator,
//! invalidation batching, PTcache handling, or descriptor lifecycle that
//! widens the unmap→invalidate window — even one the perf suites would
//! cheerfully absorb — turns a cell of this sweep red. On failure the
//! violating cells are also written to `target/audit_failure.txt` so CI
//! can upload the evidence as an artifact.
//!
//! Windows are tiny: the sweep checks invariants on every translation, so
//! a few simulated milliseconds already audit hundreds of thousands of
//! device accesses per cell.

use std::fmt::Write as _;

use fns::core::{HostSim, ProtectionMode, SimConfig};
use fns::faults::FaultConfig;
use fns::harness::{scenario_names, SweepRunner, SCENARIOS};
use fns::oracle::AuditConfig;

/// Shrinks a scenario config into an auditable cell: short windows, no
/// aging churn, the oracle attached and counting (not fatal — we want the
/// full sample list in the failure artifact).
fn audit_cell(mut cfg: SimConfig, seed: u64, faults: FaultConfig) -> SimConfig {
    cfg.warmup = 500_000;
    cfg.measure = 2_000_000;
    cfg.aging_factor = 0.0;
    cfg.seed = seed;
    cfg.faults = faults;
    cfg.audit = AuditConfig::on();
    cfg
}

fn report_failures(label: &str, failures: &[String]) {
    if failures.is_empty() {
        return;
    }
    let mut artifact = format!("{label}: {} violating cell(s)\n", failures.len());
    for f in failures {
        let _ = writeln!(artifact, "{f}");
    }
    // Best effort: the assert below is the real signal, the artifact is
    // for CI upload.
    let _ = std::fs::create_dir_all("target");
    let _ = std::fs::write("target/audit_failure.txt", &artifact);
    panic!("{artifact}");
}

/// The headline sweep: all modes × all scenarios × seeds {1, 7}.
#[test]
fn full_sweep_is_violation_free() {
    let seeds = [1u64, 7];
    let mut keys = Vec::new();
    let mut configs = Vec::new();
    for scenario in SCENARIOS {
        for mode in ProtectionMode::ALL {
            for seed in seeds {
                keys.push((scenario.name, mode, seed));
                configs.push(audit_cell(
                    (scenario.build)(mode),
                    seed,
                    FaultConfig::disabled(),
                ));
            }
        }
    }
    let results = SweepRunner::from_env().run_sims(configs);
    let mut failures = Vec::new();
    let mut audited_translations = 0u64;
    for ((name, mode, seed), m) in keys.into_iter().zip(results) {
        audited_translations += m.audit.checks;
        assert!(m.audit.enabled, "{name}/{mode}/s{seed}: audit not attached");
        if mode.iommu_enabled() {
            assert!(
                m.audit.checks > 0,
                "{name}/{mode}/s{seed}: no translations audited"
            );
        }
        if !m.audit.is_clean() {
            let mut cell = format!(
                "{name} mode={} seed={seed}: {}",
                mode.label(),
                m.audit.summary()
            );
            for v in &m.audit.samples {
                let _ = write!(cell, "\n  [{}] {}", v.invariant.name(), v.detail);
            }
            failures.push(cell);
        }
    }
    report_failures("full sweep", &failures);
    // The sweep must do real auditing work to mean anything.
    assert!(
        audited_translations > 500_000,
        "sweep audited only {audited_translations} translations"
    );
}

/// The chaos basket: injected faults (exhaustions, queue stalls, ring
/// overruns, stale-DMA probes) must degrade gracefully *and* stay within
/// the safety contract — recovery paths are exactly where an invalidation
/// is easiest to lose.
#[test]
fn chaos_sweep_is_violation_free() {
    let probabilities = [0.001, 0.01];
    let seeds = [1u64, 7];
    let mut keys = Vec::new();
    let mut configs = Vec::new();
    for mode in ProtectionMode::ALL {
        for &p in &probabilities {
            for seed in seeds {
                keys.push((mode, p, seed));
                configs.push(audit_cell(
                    fns::apps::iperf_config(mode, 2, 64),
                    seed,
                    FaultConfig::uniform(p),
                ));
            }
        }
    }
    let results = SweepRunner::from_env().run_sims(configs);
    let mut failures = Vec::new();
    for ((mode, p, seed), m) in keys.into_iter().zip(results) {
        if !m.audit.is_clean() {
            let mut cell = format!(
                "chaos mode={} p={p} seed={seed}: {}",
                mode.label(),
                m.audit.summary()
            );
            for v in &m.audit.samples {
                let _ = write!(cell, "\n  [{}] {}", v.invariant.name(), v.detail);
            }
            failures.push(cell);
        }
    }
    report_failures("chaos sweep", &failures);
}

/// Explicit coalescer coverage: in every protection mode, an audited run
/// with the invalidation batch-drain enabled (the default) must be
/// violation-free AND bit-identical — audit report included, so oracle
/// observation order is pinned too — to the per-call reference loop.
/// The headline sweep exercises the coalescer implicitly via defaults;
/// this cell makes the coverage explicit so a future default flip or a
/// drain-order regression cannot silently shrink it.
#[test]
fn coalesced_drain_is_audit_clean_in_every_mode() {
    let mut keys = Vec::new();
    let mut configs = Vec::new();
    for mode in ProtectionMode::ALL {
        let on = audit_cell(
            fns::apps::iperf_config(mode, 2, 64),
            1,
            FaultConfig::disabled(),
        );
        assert!(
            on.coalesce_inv_drain,
            "{mode}: coalesced drain must be on by default"
        );
        let mut off = on;
        off.coalesce_inv_drain = false;
        keys.push(mode);
        configs.push(on);
        configs.push(off);
    }
    let results = SweepRunner::from_env().run_sims(configs);
    let mut failures = Vec::new();
    for (mode, pair) in keys.into_iter().zip(results.chunks_exact(2)) {
        let (coalesced, reference) = (&pair[0], &pair[1]);
        for (label, m) in [("coalesced", coalesced), ("per-call", reference)] {
            assert!(m.audit.checks > 0 || !mode.iommu_enabled());
            if !m.audit.is_clean() {
                let mut cell = format!(
                    "coalescer mode={} drain={label}: {}",
                    mode.label(),
                    m.audit.summary()
                );
                for v in &m.audit.samples {
                    let _ = write!(cell, "\n  [{}] {}", v.invariant.name(), v.detail);
                }
                failures.push(cell);
            }
        }
        assert_eq!(
            coalesced, reference,
            "{mode}: coalesced drain changed the run relative to the per-call loop"
        );
    }
    report_failures("coalescer sweep", &failures);
}

/// Auditing consumes no randomness and never feeds back into the
/// simulation: the metrics of an audited run must be bit-identical to the
/// unaudited run (modulo the audit report itself), at any job count.
#[test]
fn audit_does_not_perturb_the_simulation() {
    let build = |audit: bool| {
        let mut cfg = audit_cell(
            fns::harness::scenario_config("iperf", ProtectionMode::FastAndSafe).unwrap(),
            3,
            FaultConfig::disabled(),
        );
        cfg.audit = if audit {
            AuditConfig::on()
        } else {
            AuditConfig::off()
        };
        cfg
    };
    let mut audited = HostSim::new(build(true)).run();
    let plain = HostSim::new(build(false)).run();
    assert!(audited.audit.is_clean());
    assert!(audited.audit.checks > 0);
    audited.audit = Default::default();
    assert_eq!(audited, plain, "auditing changed the simulation");
}

/// A seeded cross-domain leak (a map op aliased into the next tenant's
/// domain, touched, and torn down without invalidation) must be caught and
/// *named* by the oracle in every IOMMU-enabled protection mode — deferred
/// windows excuse same-domain staleness, never cross-domain resolution.
/// IommuOff is exempt by contract: with no translation there is no domain
/// to cross (`mode_contracts` pins `domain_isolation == iommu_enabled()`).
#[test]
fn cross_domain_leak_is_caught_in_every_mode() {
    use fns::core::Sabotage;
    let mut keys = Vec::new();
    let mut configs = Vec::new();
    for mode in ProtectionMode::ALL {
        let mut cfg = audit_cell(
            fns::apps::fanin_config(mode, 16),
            1,
            FaultConfig::disabled(),
        );
        cfg.sabotage = Sabotage::CrossDomainLeak { nth: 40 };
        keys.push(mode);
        configs.push(cfg);
    }
    let results = SweepRunner::from_env().run_sims(configs);
    for (mode, m) in keys.into_iter().zip(results) {
        if !mode.iommu_enabled() {
            assert!(
                m.audit.is_clean(),
                "{mode}: leak sabotage is a translation-layer bug; IOMMU-off has no translations"
            );
            continue;
        }
        let caught = m
            .audit
            .samples
            .iter()
            .any(|v| v.invariant.name() == "cross-domain-isolation");
        assert!(
            caught,
            "{mode}: seeded cross-domain leak went undetected ({})",
            m.audit.summary()
        );
    }
}

/// The scenario registry drives this sweep: a scenario added without a
/// name (or a renamed one) would silently shrink the matrix.
#[test]
fn sweep_covers_the_whole_registry() {
    assert_eq!(
        scenario_names(),
        vec![
            "iperf",
            "iperf-small-ring",
            "bidirectional",
            "redis",
            "nginx",
            "spdk",
            "rpc",
            "mt-fanin",
            "mt-incast",
            "mt-churn",
            "dc-scale"
        ]
    );
}
