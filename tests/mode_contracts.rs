//! Pins each protection mode's safety contract.
//!
//! The oracle audits exactly what `ProtectionMode::contract` claims, so
//! the contract *is* the safety spec: a new mode (or a refactor of an old
//! one) that silently weakened its claims would also silently weaken the
//! auditing. This table makes that impossible — every mode's claims are
//! spelled out here and compared field by field, and the table itself is
//! checked for exhaustiveness against `ProtectionMode::ALL`.

use fns::core::ProtectionMode;
use fns::oracle::ModeContract;

const WINDOW: u64 = 320;

/// The expected contract per mode label. Strict modes claim safety and
/// invalidation completeness; PTcache-preserving modes additionally claim
/// coherence; deferred mode claims only its documented bounded window;
/// pinned pools promise stable mappings and never unmap; IOMMU-off claims
/// nothing at all. Every IOMMU-enabled mode — however lazily it
/// invalidates within a tenant — claims cross-domain isolation: protection
/// domains are hardware state, not a driver policy, so only IOMMU-off
/// (physical addresses, nothing separating tenants) drops the claim.
const EXPECTED: &[(&str, ModeContract)] = &[
    (
        "iommu-off",
        ModeContract {
            translates: false,
            unmaps: false,
            strict_safety: false,
            ptcache_coherence: false,
            invalidation_completeness: false,
            domain_isolation: false,
            deferred_window: None,
        },
    ),
    (
        "linux-strict",
        ModeContract {
            translates: true,
            unmaps: true,
            strict_safety: true,
            ptcache_coherence: false,
            invalidation_completeness: true,
            domain_isolation: true,
            deferred_window: None,
        },
    ),
    (
        "linux-deferred",
        ModeContract {
            translates: true,
            unmaps: true,
            strict_safety: false,
            ptcache_coherence: false,
            invalidation_completeness: false,
            domain_isolation: true,
            deferred_window: Some(WINDOW),
        },
    ),
    (
        "linux+A",
        ModeContract {
            translates: true,
            unmaps: true,
            strict_safety: true,
            ptcache_coherence: true,
            invalidation_completeness: true,
            domain_isolation: true,
            deferred_window: None,
        },
    ),
    (
        "linux+B",
        ModeContract {
            translates: true,
            unmaps: true,
            strict_safety: true,
            ptcache_coherence: false,
            invalidation_completeness: true,
            domain_isolation: true,
            deferred_window: None,
        },
    ),
    (
        "fast-and-safe",
        ModeContract {
            translates: true,
            unmaps: true,
            strict_safety: true,
            ptcache_coherence: true,
            invalidation_completeness: true,
            domain_isolation: true,
            deferred_window: None,
        },
    ),
    (
        "hugepage-pin",
        ModeContract {
            translates: true,
            unmaps: false,
            strict_safety: false,
            ptcache_coherence: false,
            invalidation_completeness: false,
            domain_isolation: true,
            deferred_window: None,
        },
    ),
    (
        "damn-recycle",
        ModeContract {
            translates: true,
            unmaps: false,
            strict_safety: false,
            ptcache_coherence: false,
            invalidation_completeness: false,
            domain_isolation: true,
            deferred_window: None,
        },
    ),
    (
        "fns+hugepages",
        ModeContract {
            translates: true,
            unmaps: true,
            strict_safety: true,
            ptcache_coherence: true,
            invalidation_completeness: true,
            domain_isolation: true,
            deferred_window: None,
        },
    ),
];

#[test]
fn every_mode_claims_exactly_its_documented_contract() {
    assert_eq!(
        EXPECTED.len(),
        ProtectionMode::ALL.len(),
        "contract table out of sync with ProtectionMode::ALL"
    );
    for mode in ProtectionMode::ALL {
        let expected = EXPECTED
            .iter()
            .find(|(label, _)| *label == mode.label())
            .unwrap_or_else(|| panic!("mode {} missing from the contract table", mode.label()))
            .1;
        assert_eq!(
            mode.contract(WINDOW),
            expected,
            "contract drift for mode {}",
            mode.label()
        );
    }
}

/// Cross-checks between contract claims and the mode predicates the
/// datapath branches on: a contract may never claim more than the
/// datapath implements, nor the datapath more than the contract audits.
#[test]
fn contract_claims_match_mode_predicates() {
    for mode in ProtectionMode::ALL {
        let c = mode.contract(WINDOW);
        assert_eq!(c.translates, mode.iommu_enabled(), "{}", mode.label());
        assert_eq!(c.strict_safety, mode.is_strict_safe(), "{}", mode.label());
        assert_eq!(
            c.ptcache_coherence,
            mode.preserves_ptcache(),
            "{}",
            mode.label()
        );
        assert_eq!(
            c.unmaps,
            mode.iommu_enabled() && !mode.is_pinned_pool(),
            "{}",
            mode.label()
        );
        // Domain isolation rides on the IOMMU being on, nothing else: a
        // deferred or pinned-pool mode is still a wall between tenants.
        assert_eq!(c.domain_isolation, mode.iommu_enabled(), "{}", mode.label());
        // Strictness and completeness travel together: an unmap you never
        // invalidate is exactly the stale window strictness forbids.
        assert_eq!(
            c.strict_safety,
            c.invalidation_completeness,
            "{}",
            mode.label()
        );
        // Only deferred mode gets a bounded-backlog exception, and only
        // non-strict modes may have one at all.
        assert_eq!(
            c.deferred_window.is_some(),
            mode == ProtectionMode::LinuxDeferred,
            "{}",
            mode.label()
        );
        if c.deferred_window.is_some() {
            assert!(!c.strict_safety, "a strict mode cannot have a window");
        }
        // PTcache coherence is only claimable by modes that actually keep
        // PTcache state across unmaps.
        if c.ptcache_coherence {
            assert!(mode.preserves_ptcache(), "{}", mode.label());
        }
    }
}

/// The window parameter flows through verbatim for deferred mode.
#[test]
fn deferred_window_is_parameterized() {
    assert_eq!(
        ProtectionMode::LinuxDeferred.contract(99).deferred_window,
        Some(99)
    );
    assert_eq!(
        ProtectionMode::FastAndSafe.contract(99).deferred_window,
        None
    );
}
