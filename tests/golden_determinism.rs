//! Golden determinism: the parallel sweep runner and the hot-path
//! specializations (packed-u64 LRU, dense flow tables, reusable event
//! queue) must be invisible in the results.
//!
//! Every test drives the same configurations through the plain sequential
//! path (`HostSim::run` on the calling thread) and through `SweepRunner`
//! with several workers, then requires **bit-identical** `RunMetrics` —
//! every counter, the latency histogram, the locality trace, and the full
//! chronological fault log.

use fns::apps::{iperf_config, rpc_config};
use fns::core::{Engine, HostSim, ProtectionMode, RunArena, RunMetrics, SimConfig};
use fns::faults::FaultConfig;
use fns::harness::SweepRunner;
use fns::sim::queue::QueueKind;
use fns::trace::{ObserveConfig, ProbeConfig, TraceConfig};

/// Fig2-shaped sweep points (shortened windows): flow counts crossed with
/// the stock-overhead modes.
fn fig2_shaped() -> Vec<SimConfig> {
    let mut configs = Vec::new();
    for flows in [5u32, 20] {
        for mode in [ProtectionMode::IommuOff, ProtectionMode::LinuxStrict] {
            let mut cfg = iperf_config(mode, flows, 256);
            cfg.warmup = 2_000_000;
            cfg.measure = 5_000_000;
            configs.push(cfg);
        }
    }
    configs
}

/// Chaos-shaped sweep points: small fault-injected runs whose fault logs
/// exercise the forked RNG planes.
fn chaos_shaped() -> Vec<SimConfig> {
    let mut configs = Vec::new();
    for &p in &[0.0, 0.01, 0.05] {
        for mode in [ProtectionMode::LinuxStrict, ProtectionMode::FastAndSafe] {
            let mut cfg = iperf_config(mode, 2, 64);
            cfg.cores = 2;
            cfg.warmup = 500_000;
            cfg.measure = 2_000_000;
            cfg.aging_factor = 0.0;
            cfg.faults = FaultConfig::uniform(p);
            configs.push(cfg);
        }
    }
    configs
}

fn run_sequentially(configs: &[SimConfig]) -> Vec<RunMetrics> {
    configs.iter().map(|cfg| HostSim::new(*cfg).run()).collect()
}

fn assert_identical(golden: &[RunMetrics], candidate: &[RunMetrics], what: &str) {
    assert_eq!(golden.len(), candidate.len(), "{what}: result count");
    for (i, (a, b)) in golden.iter().zip(candidate).enumerate() {
        assert_eq!(
            a.fault_log, b.fault_log,
            "{what} run {i}: fault logs diverged"
        );
        assert_eq!(a, b, "{what} run {i}: metrics diverged");
    }
}

#[test]
fn fig2_shaped_sweep_is_identical_under_parallelism() {
    let configs = fig2_shaped();
    let golden = run_sequentially(&configs);
    for jobs in [1, 4] {
        let par = SweepRunner::new(jobs).run_sims(configs.clone());
        assert_identical(&golden, &par, &format!("fig2-shaped jobs={jobs}"));
    }
}

#[test]
fn traced_fig2_shaped_sweep_is_identical_under_parallelism() {
    // Full-telemetry configs: every trace category recorded plus the gauge
    // sampler. RunMetrics PartialEq covers the event trace, the sampler
    // series, and the span table, so bit-identical results here mean the
    // whole telemetry plane is deterministic under parallelism.
    let configs: Vec<SimConfig> = fig2_shaped()
        .into_iter()
        .map(|mut cfg| {
            cfg.trace = TraceConfig::all();
            cfg.probes = ProbeConfig::every(100_000);
            cfg
        })
        .collect();
    let golden = run_sequentially(&configs);
    assert!(
        golden.iter().all(|m| !m.trace.is_empty()),
        "traced runs recorded no events"
    );
    assert!(
        golden.iter().all(|m| !m.samples.samples.is_empty()),
        "probed runs recorded no samples"
    );
    for jobs in [1, 8] {
        let par = SweepRunner::new(jobs).run_sims(configs.clone());
        assert_identical(&golden, &par, &format!("traced fig2-shaped jobs={jobs}"));
        for (a, b) in golden.iter().zip(&par) {
            assert_eq!(a.trace, b.trace, "trace diverged at jobs={jobs}");
            assert_eq!(
                a.samples, b.samples,
                "sampler series diverged at jobs={jobs}"
            );
        }
    }
}

#[test]
fn chaos_shaped_sweep_is_identical_under_parallelism() {
    let configs = chaos_shaped();
    let golden = run_sequentially(&configs);
    for jobs in [2, 8] {
        let par = SweepRunner::new(jobs).run_sims(configs.clone());
        assert_identical(&golden, &par, &format!("chaos-shaped jobs={jobs}"));
    }
}

#[test]
fn latency_histograms_survive_the_parallel_path() {
    // Fig9-shaped: the histogram is the one RunMetrics field with interior
    // structure (bucket vector), so cover it explicitly.
    let mut cfg = rpc_config(ProtectionMode::FastAndSafe, 4096);
    cfg.measure = 20_000_000;
    let configs = vec![cfg, cfg];
    let golden = run_sequentially(&configs);
    assert!(golden[0].latency.count() > 0, "no latency samples recorded");
    let par = SweepRunner::new(2).run_sims(configs);
    assert_identical(&golden, &par, "fig9-shaped");
}

#[test]
fn arena_recycled_runs_match_fresh_runs() {
    // One arena threaded through a heterogeneous mix of configurations
    // (different modes, flow counts, fault planes, trace settings) must
    // yield the exact metrics of a fresh simulation per point: the
    // recycled event-queue slab, page tables, pools, and flow tables are
    // storage-only and must never leak state between runs.
    let mut configs = fig2_shaped();
    configs.extend(chaos_shaped());
    configs[0].trace = TraceConfig::all();
    configs[0].probes = ProbeConfig::every(100_000);
    let golden = run_sequentially(&configs);
    let mut arena = RunArena::new();
    let recycled: Vec<RunMetrics> = configs
        .iter()
        .map(|cfg| HostSim::run_in(*cfg, &mut arena))
        .collect();
    assert_identical(&golden, &recycled, "arena-recycled");
    // Re-running the same sequence through the now-warm arena must also
    // agree — the arena's steady state is as clean as its first use.
    let warm: Vec<RunMetrics> = configs
        .iter()
        .map(|cfg| HostSim::run_in(*cfg, &mut arena))
        .collect();
    assert_identical(&golden, &warm, "warm-arena repeat");
}

#[test]
fn wheel_and_heap_queues_agree_end_to_end() {
    // The timing-wheel queue must be invisible in simulation results: the
    // same sweep run with the reference binary-heap queue yields
    // bit-identical metrics, including fault logs under chaos configs.
    let mut configs = fig2_shaped();
    configs.extend(chaos_shaped());
    let wheel = run_sequentially(&configs);
    let heap_cfgs: Vec<SimConfig> = configs
        .iter()
        .map(|cfg| {
            let mut c = *cfg;
            c.queue = QueueKind::Heap;
            c
        })
        .collect();
    let heap = run_sequentially(&heap_cfgs);
    assert_identical(&wheel, &heap, "wheel-vs-heap");
    // And the heap path must survive arena recycling too (the arena drops
    // a recycled wheel when the config asks for a heap, and vice versa).
    let mut arena = RunArena::new();
    let mut mixed = Vec::new();
    for (w, h) in configs.iter().zip(&heap_cfgs) {
        mixed.push(HostSim::run_in(*w, &mut arena));
        mixed.push(HostSim::run_in(*h, &mut arena));
    }
    let interleaved: Vec<RunMetrics> = wheel
        .iter()
        .zip(&heap)
        .flat_map(|(w, h)| [w.clone(), h.clone()])
        .collect();
    assert_identical(&interleaved, &mixed, "interleaved wheel/heap arena");
}

#[test]
fn snapshot_restore_pins_bit_identical_metrics_at_any_job_count() {
    // The checkpoint plane must be invisible too: run-to-T → snapshot →
    // restore → run-to-end equals the uninterrupted run bit for bit, for
    // every protection mode, both queue backends, and under the parallel
    // sweep runner at 1 and 8 workers.
    let mut configs = Vec::new();
    for mode in ProtectionMode::ALL {
        for queue in [QueueKind::Wheel, QueueKind::Heap] {
            let mut cfg = iperf_config(mode, 2, 64);
            cfg.cores = 2;
            cfg.warmup = 500_000;
            cfg.measure = 2_000_000;
            cfg.aging_factor = 0.0;
            cfg.queue = queue;
            configs.push(cfg);
        }
    }
    let golden = run_sequentially(&configs);
    let interrupt = |cfg: SimConfig| {
        let mut sim = HostSim::new(cfg);
        sim.step_until(1_200_000);
        let bytes = sim.snapshot();
        drop(sim);
        HostSim::restore(cfg, &bytes)
            .expect("a sim's own snapshot restores under its own config")
            .run()
    };
    for jobs in [1, 8] {
        let resumed = SweepRunner::new(jobs).map(configs.clone(), interrupt);
        assert_identical(&golden, &resumed, &format!("snapshot/restore jobs={jobs}"));
    }
}

#[test]
fn coalesced_drain_matches_per_event_submission() {
    // The invalidation drain coalescer must be invisible: the same sweep
    // with the coalescer disabled (one `submit_invalidations` call per
    // page, the pre-coalescer reference) yields bit-identical metrics —
    // including fault logs, traces, and sampler series — on both queue
    // backends and at 1 and 8 workers.
    let mut configs = fig2_shaped();
    configs.extend(chaos_shaped());
    // Fold in full telemetry + probes on one cell, and the heap backend on
    // another, so trace streams and both queues are covered.
    configs[0].trace = TraceConfig::all();
    configs[0].probes = ProbeConfig::every(100_000);
    configs[1].queue = QueueKind::Heap;
    assert!(
        configs.iter().all(|c| c.coalesce_inv_drain),
        "the coalescer must be default-on"
    );
    let golden = run_sequentially(&configs);
    let legacy_cfgs: Vec<SimConfig> = configs
        .iter()
        .map(|cfg| {
            let mut c = *cfg;
            c.coalesce_inv_drain = false;
            c
        })
        .collect();
    let legacy = run_sequentially(&legacy_cfgs);
    assert_identical(&golden, &legacy, "coalesced-vs-per-event");
    for (a, b) in golden.iter().zip(&legacy) {
        assert_eq!(a.trace, b.trace, "trace diverged with coalescer off");
        assert_eq!(a.samples, b.samples, "samples diverged with coalescer off");
    }
    for jobs in [1, 8] {
        let par = SweepRunner::new(jobs).run_sims(legacy_cfgs.clone());
        assert_identical(&golden, &par, &format!("per-event drain jobs={jobs}"));
    }
}

#[test]
fn fast_forward_matches_reference_cascade() {
    // The wheel's analytic fast-forward must be unobservable in any
    // metric, trace, or audit: the same sweep with the fast-forward
    // disabled (one-level-per-pass cascade) is bit-identical, and the heap
    // backend — which has nothing to fast-forward — agrees with both.
    let mut configs = fig2_shaped();
    configs.extend(chaos_shaped());
    configs[0].trace = TraceConfig::all();
    configs[0].probes = ProbeConfig::every(100_000);
    assert!(
        configs.iter().all(|c| c.queue_fast_forward),
        "fast-forward must be default-on"
    );
    let golden = run_sequentially(&configs);
    let cascade_cfgs: Vec<SimConfig> = configs
        .iter()
        .map(|cfg| {
            let mut c = *cfg;
            c.queue_fast_forward = false;
            c
        })
        .collect();
    let cascade = run_sequentially(&cascade_cfgs);
    assert_identical(&golden, &cascade, "fast-forward-vs-cascade");
    for (a, b) in golden.iter().zip(&cascade) {
        assert_eq!(a.trace, b.trace, "trace diverged with fast-forward off");
    }
    let heap_cfgs: Vec<SimConfig> = configs
        .iter()
        .map(|cfg| {
            let mut c = *cfg;
            c.queue = QueueKind::Heap;
            c
        })
        .collect();
    let heap = run_sequentially(&heap_cfgs);
    assert_identical(&golden, &heap, "fast-forward-vs-heap");
    for jobs in [1, 8] {
        let par = SweepRunner::new(jobs).run_sims(cascade_cfgs.clone());
        assert_identical(&golden, &par, &format!("cascade jobs={jobs}"));
    }
}

#[test]
fn observability_is_invisible_and_rng_free() {
    // The causal observability plane (provenance book, txn spans, HDR
    // registry, flight recorder) must be a pure observer: arming all of
    // it changes nothing but the dumps themselves. Scrubbing the four
    // dump fields from an armed run must yield the bare run bit for bit —
    // which also pins that the plane consumes no RNG (any draw would fork
    // the fault/workload streams and diverge every counter).
    let mut configs = chaos_shaped();
    // Include the gauge sampler on one cell: the registry rides its
    // cadence, and the sampler series itself must not shift.
    configs[0].probes = ProbeConfig::every(100_000);
    let golden = run_sequentially(&configs);
    let armed_cfgs: Vec<SimConfig> = configs
        .iter()
        .map(|cfg| {
            let mut c = *cfg;
            c.observe = ObserveConfig::full();
            c
        })
        .collect();
    let armed = run_sequentially(&armed_cfgs);
    for (i, m) in armed.iter().enumerate() {
        assert!(m.provenance.enabled, "run {i}: provenance off");
        assert!(!m.provenance.pages.is_empty(), "run {i}: no timelines");
        assert!(m.txns.enabled, "run {i}: txns off");
        assert!(m.registry.enabled, "run {i}: registry off");
        assert!(!m.flight.is_empty(), "run {i}: flight ring empty");
        // Heavily faulted cells can kill all traffic before a descriptor
        // completes; require completed spans only where traffic flows.
        if m.faults.total_injected() == 0 {
            assert!(!m.txns.records.is_empty(), "run {i}: no txn records");
            assert!(!m.registry.stats.is_empty(), "run {i}: no registry keys");
        }
    }
    let scrubbed: Vec<RunMetrics> = armed
        .into_iter()
        .map(|mut m| {
            m.provenance = Default::default();
            m.txns = Default::default();
            m.registry = Default::default();
            m.flight = Default::default();
            m
        })
        .collect();
    assert_identical(&golden, &scrubbed, "observability-armed");
    // And the armed plane itself replays identically under parallelism,
    // dumps included.
    for jobs in [1, 8] {
        let par = SweepRunner::new(jobs).run_sims(armed_cfgs.clone());
        let rerun = run_sequentially(&armed_cfgs);
        assert_identical(&rerun, &par, &format!("armed observability jobs={jobs}"));
    }
}

#[test]
fn armed_observability_survives_checkpoint_restore() {
    // Snapshot/restore with the full plane armed: the book, txn ring,
    // registry, and flight ring serialize into the checkpoint and the
    // resumed run's dumps equal the uninterrupted run's bit for bit
    // (RunMetrics PartialEq covers all four fields).
    for mode in [ProtectionMode::LinuxStrict, ProtectionMode::FastAndSafe] {
        let mut cfg = iperf_config(mode, 2, 64);
        cfg.cores = 2;
        cfg.warmup = 500_000;
        cfg.measure = 2_000_000;
        cfg.aging_factor = 0.0;
        cfg.observe = ObserveConfig::full();
        let golden = HostSim::new(cfg).run();
        assert!(
            golden.provenance.enabled && !golden.flight.is_empty(),
            "armed run recorded nothing"
        );
        let mut sim = HostSim::new(cfg);
        sim.step_until(1_200_000);
        let bytes = sim.snapshot();
        drop(sim);
        let resumed = HostSim::restore(cfg, &bytes)
            .expect("armed snapshot restores")
            .run();
        assert_eq!(golden, resumed, "mode {:?}: armed resume diverged", mode);
    }
}

/// Multi-device, multi-tenant scenarios (2 NICs × 4 queues + a storage
/// DMA device, three protection domains) with shortened windows.
fn multi_device_shaped() -> Vec<SimConfig> {
    let mut configs = Vec::new();
    for mode in [
        ProtectionMode::LinuxDeferred,
        ProtectionMode::FastAndSafe,
        ProtectionMode::IommuOff,
    ] {
        for cfg in [
            fns::apps::fanin_config(mode, 24),
            fns::apps::incast_config(mode, 12, 64 * 1024),
            fns::apps::churn_config(mode, 16, 128 * 1024),
        ] {
            let mut c = cfg;
            c.warmup = 1_000_000;
            c.measure = 3_000_000;
            c.aging_factor = 0.0;
            configs.push(c);
        }
    }
    configs
}

#[test]
fn multi_device_sweep_is_identical_under_parallelism_and_queues() {
    // The tentpole topology must be as deterministic as the single-NIC
    // shape: per-domain attribution, storage completions, and churn
    // restarts all ride the same event order at any job count and on
    // either queue backend.
    let configs = multi_device_shaped();
    let golden = run_sequentially(&configs);
    for m in &golden {
        assert_eq!(m.domains.len(), 3, "expected three protection domains");
    }
    for jobs in [1, 8] {
        let par = SweepRunner::new(jobs).run_sims(configs.clone());
        assert_identical(&golden, &par, &format!("multi-device jobs={jobs}"));
    }
    let heap_cfgs: Vec<SimConfig> = configs
        .iter()
        .map(|cfg| {
            let mut c = *cfg;
            c.queue = QueueKind::Heap;
            c
        })
        .collect();
    let heap = run_sequentially(&heap_cfgs);
    assert_identical(&golden, &heap, "multi-device wheel-vs-heap");
}

#[test]
fn multi_device_audit_is_invisible_and_restore_safe() {
    // Audited multi-device runs must equal unaudited runs bit for bit
    // (modulo the audit report), and a snapshot → restore round-trip
    // mid-run must resume onto the identical trajectory with the whole
    // multi-device state (per-NIC buffers, per-ring descriptors,
    // per-domain IOMMU stats, churn boundaries) in the checkpoint.
    let configs = multi_device_shaped();
    let golden = run_sequentially(&configs);
    let audited_cfgs: Vec<SimConfig> = configs
        .iter()
        .map(|cfg| {
            let mut c = *cfg;
            c.audit = fns::oracle::AuditConfig::on();
            c
        })
        .collect();
    let audited = run_sequentially(&audited_cfgs);
    for (i, (plain, aud)) in golden.iter().zip(&audited).enumerate() {
        assert!(aud.audit.is_clean(), "run {i}: audit violations");
        let mut scrubbed = aud.clone();
        scrubbed.audit = Default::default();
        assert_eq!(&scrubbed, plain, "run {i}: auditing changed the run");
    }
    let resumed: Vec<RunMetrics> = configs
        .iter()
        .map(|cfg| {
            let mut sim = HostSim::new(*cfg);
            sim.step_until(1_500_000);
            let bytes = sim.snapshot();
            drop(sim);
            HostSim::restore(*cfg, &bytes)
                .expect("multi-device snapshot restores")
                .run()
        })
        .collect();
    assert_identical(&golden, &resumed, "multi-device snapshot/restore");
}

/// Multi-NIC shard-shaped config: 4 NICs × 2 queues + storage — the
/// per-NIC partition — with full telemetry armed so the chronological
/// trace merge is part of every comparison.
fn shard_multi_nic(mode: ProtectionMode) -> SimConfig {
    let mut cfg = fns::apps::fanin_config(mode, 16);
    cfg.topology.nics = 4;
    cfg.topology.queues_per_nic = 2;
    cfg.warmup = 500_000;
    cfg.measure = 1_500_000;
    cfg.aging_factor = 0.0;
    cfg.trace = TraceConfig::all();
    cfg.probes = ProbeConfig::every(100_000);
    cfg
}

/// Single-NIC shard-shaped config: exercises the per-flow-group fallback
/// partition (one shard per core).
fn shard_single_nic(mode: ProtectionMode) -> SimConfig {
    let mut cfg = iperf_config(mode, 4, 64);
    cfg.cores = 4;
    cfg.warmup = 500_000;
    cfg.measure = 1_500_000;
    cfg.aging_factor = 0.0;
    cfg
}

fn shard_run(cfg: SimConfig, shards: usize) -> RunMetrics {
    let mut c = cfg;
    c.shards = shards;
    Engine::new(c).run()
}

#[test]
fn sharded_engine_is_identical_at_shards_1_2_4() {
    // The `shards` knob caps worker threads; it must never touch results.
    // Pin bit-identical RunMetrics — fault logs, traces, sampler series,
    // and audit reports included — across shards 1/2/4, on both queue
    // backends, audited and unaudited, for the per-NIC partition and the
    // single-NIC flow-group fallback.
    for base in [
        shard_multi_nic(ProtectionMode::FastAndSafe),
        shard_single_nic(ProtectionMode::LinuxStrict),
    ] {
        for queue in [QueueKind::Wheel, QueueKind::Heap] {
            for audited in [false, true] {
                let mut cfg = base;
                cfg.queue = queue;
                if audited {
                    cfg.audit = fns::oracle::AuditConfig::on();
                }
                let golden = vec![shard_run(cfg, 1)];
                if audited {
                    assert!(
                        golden[0].audit.is_clean(),
                        "sharded run must stay violation-free"
                    );
                }
                for shards in [2usize, 4] {
                    let got = vec![shard_run(cfg, shards)];
                    assert_identical(
                        &golden,
                        &got,
                        &format!("shards={shards} queue={queue:?} audited={audited}"),
                    );
                }
            }
        }
    }
}

#[test]
fn sharded_snapshot_at_epoch_boundary_restores_and_resumes() {
    // Snapshot a 4-way sharded run exactly on a shard-epoch boundary,
    // restore, resume: the end state equals the uninterrupted sharded run
    // bit for bit — and the same bytes restore at a different worker cap
    // (the snapshot format is cap-independent).
    let mut cfg = shard_multi_nic(ProtectionMode::FastAndSafe);
    cfg.shards = 4;
    let golden = Engine::new(cfg).run();
    let mut sim = Engine::new(cfg);
    sim.step_until(700_000); // 7 × the 100 µs shard epoch
    assert_eq!(sim.now(), 700_000);
    let bytes = sim.snapshot();
    drop(sim);
    let resumed = Engine::restore(cfg, &bytes)
        .expect("sharded snapshot restores")
        .run();
    assert_eq!(golden, resumed, "sharded resume diverged");
    let mut recapped = cfg;
    recapped.shards = 2;
    let resumed_recapped = Engine::restore(recapped, &bytes)
        .expect("sharded snapshot restores at another worker cap")
        .run();
    assert_eq!(golden, resumed_recapped, "recapped resume diverged");
}

#[test]
fn repeated_parallel_sweeps_are_identical_to_each_other() {
    // Not just parallel == sequential: two parallel executions must agree
    // with each other even when thread scheduling differs.
    let configs = chaos_shaped();
    let first = SweepRunner::new(4).run_sims(configs.clone());
    let second = SweepRunner::new(4).run_sims(configs);
    assert_identical(&first, &second, "parallel repeat");
}
