//! The whole IO-memory-protection design space on one screen.
//!
//! Runs all nine protection modes on the 40-flow microbenchmark — the
//! stress point where stock strict protection loses half its throughput —
//! and prints the performance × safety map. The punchline is the paper's:
//! every pre-F&S design either pays with throughput or pays with safety;
//! F&S (and its hugepage-augmented future-work variant) pays with neither.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use fns::apps::iperf_config;
use fns::core::{HostSim, ProtectionMode};

fn main() {
    println!("40 iperf flows into a 5-core 100 Gbps receiver:\n");
    println!(
        "{:>15} {:>10} {:>12} {:>10} {:>10}",
        "mode", "goodput", "IOTLB/page", "reads/pg", "safety"
    );
    let mut strict_best: Option<(ProtectionMode, f64)> = None;
    for mode in ProtectionMode::ALL {
        let mut cfg = iperf_config(mode, 40, 256);
        cfg.measure = 40_000_000;
        let m = HostSim::new(cfg).run();
        assert_eq!(m.stale_ptcache_walks, 0);
        let safety = if mode == ProtectionMode::IommuOff {
            "none"
        } else if mode.is_strict_safe() {
            "STRICT"
        } else {
            "weakened"
        };
        println!(
            "{:>15} {:>8.1} G {:>12.2} {:>10.2} {:>10}",
            mode.label(),
            m.rx_gbps(),
            m.iotlb_misses_per_page(),
            m.memory_reads_per_page(),
            safety
        );
        if mode.is_strict_safe() {
            let g = m.rx_gbps();
            if strict_best.is_none_or(|(_, best)| g > best) {
                strict_best = Some((mode, g));
            }
        }
    }
    let (best_mode, best_g) = strict_best.expect("strict modes exist");
    println!(
        "\nBest strict-safe design: {best_mode} at {best_g:.1} Gbps — \
         protection no longer costs throughput."
    );
}
