//! Multi-tenant tail latency: an RPC service colocated with bulk traffic.
//!
//! The scenario the paper's Figure 9 motivates: a latency-sensitive RPC
//! application shares a host with throughput-bound tenants. With stock
//! strict protection, the RPC's P99.9 inflates by orders of magnitude
//! (retransmission timeouts after NIC drops); F&S keeps the tail within a
//! small factor of running with the IOMMU off — while staying strictly
//! safe.
//!
//! ```sh
//! cargo run --release --example multi_tenant_latency
//! ```

use fns::apps::rpc_config;
use fns::core::{HostSim, ProtectionMode};

fn main() {
    let rpc_bytes = 4096;
    println!("4 KB RPCs on a dedicated core, colocated with 5 iperf flows:\n");
    println!(
        "{:>14} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "mode", "p50 (us)", "p90 (us)", "p99 (us)", "p99.9", "p99.99"
    );
    let mut base_p99 = 0.0_f64;
    for mode in [
        ProtectionMode::IommuOff,
        ProtectionMode::LinuxStrict,
        ProtectionMode::FastAndSafe,
    ] {
        let m = HostSim::new(rpc_config(mode, rpc_bytes)).run();
        let p = |q: f64| m.latency.percentile(q) as f64 / 1000.0;
        println!(
            "{:>14} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            mode.label(),
            p(50.0),
            p(90.0),
            p(99.0),
            p(99.9),
            p(99.99)
        );
        match mode {
            ProtectionMode::IommuOff => base_p99 = p(99.9),
            ProtectionMode::FastAndSafe => {
                let ratio = p(99.9) / base_p99.max(1.0);
                println!(
                    "\nF&S P99.9 is {ratio:.2}x the IOMMU-off tail \
                     (paper: within 1.17x, 1.42x at P99.99)."
                );
            }
            _ => {}
        }
    }
}
