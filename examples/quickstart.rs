//! Quickstart: measure IO memory protection overheads and the F&S fix.
//!
//! Runs the paper's default microbenchmark (5 DCTCP flows into a 5-core,
//! 100 Gbps host) under three protection modes and prints the headline
//! comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fns::core::{HostSim, ProtectionMode, SimConfig};

fn main() {
    println!("F&S quickstart: 5 iperf flows into a 5-core 100 Gbps receiver\n");
    println!(
        "{:>14} {:>10} {:>8} {:>12} {:>14} {:>10}",
        "mode", "goodput", "drops", "IOTLB/page", "PTcache(L1-3)", "reads/pg"
    );
    for mode in [
        ProtectionMode::IommuOff,
        ProtectionMode::LinuxStrict,
        ProtectionMode::FastAndSafe,
    ] {
        let cfg = SimConfig::paper_default(mode);
        let m = HostSim::new(cfg).run();
        println!(
            "{:>14} {:>8.1} G {:>7.2}% {:>12.2} {:>4.2}/{:.2}/{:.2} {:>10.2}",
            mode.label(),
            m.rx_gbps(),
            m.drop_rate() * 100.0,
            m.iotlb_misses_per_page(),
            m.l1_misses_per_page(),
            m.l2_misses_per_page(),
            m.l3_misses_per_page(),
            m.memory_reads_per_page(),
        );
        // Every strict-safe mode must keep the device away from unmapped
        // memory — this is checked inside the simulation.
        if mode.is_strict_safe() {
            assert_eq!(m.stale_iotlb_hits, 0);
        }
        assert_eq!(m.stale_ptcache_walks, 0);
    }
    println!(
        "\nFast & Safe provides the same strict safety as linux-strict while \
         matching iommu-off throughput:\nit reduces the *cost* of each IOTLB miss \
         (1 memory read instead of up to 4) rather than the miss count."
    );
}
