//! Why the Linux IOVA allocator defeats the IO page-table caches.
//!
//! A self-contained demonstration of the paper's §2.2 root cause, using
//! only the allocator substrate (no full-host simulation): per-core
//! magazine caches recycle IOVAs in an order that drifts away from address
//! order, so a 64-page descriptor ends up spanning many PT-L4 pages — while
//! F&S's single contiguous allocation spans at most two.
//!
//! ```sh
//! cargo run --release --example allocator_locality
//! ```

use std::collections::HashSet;

use fns::iova::{CachingAllocator, IovaAllocator, IovaRange};
use fns::sim::SimRng;

fn main() {
    let cores = 4;
    let mut alloc = CachingAllocator::with_defaults(cores);
    let mut rng = SimRng::seed(7);

    // Simulate a while of Rx + cross-core Tx churn, like a running host.
    let mut rings: Vec<Vec<IovaRange>> = vec![Vec::new(); cores];
    for round in 0..2000 {
        for (core, ring) in rings.iter_mut().enumerate() {
            for _ in 0..64 {
                ring.push(alloc.alloc(1, core).expect("space"));
            }
            // Tx/ACK traffic: allocated here, freed on the completion core.
            for _ in 0..rng.range(0, 16) {
                let r = alloc.alloc(1, core).expect("space");
                alloc.free(r, (core + 1) % cores);
            }
            if round >= 4 {
                for r in ring.drain(..64) {
                    alloc.free(r, core);
                }
            }
        }
    }

    // Now build one "descriptor" the Linux way (64 single-page allocations)
    // and one the F&S way (one 64-page chunk).
    let linux_pages: Vec<_> = (0..64).map(|_| alloc.alloc(1, 0).expect("space")).collect();
    let linux_regions: HashSet<u64> = linux_pages.iter().map(|r| r.base().l4_page_key()).collect();

    let fns_chunk = alloc.alloc(64, 0).expect("space");
    let fns_regions: HashSet<u64> = fns_chunk.iter_pages().map(|p| p.l4_page_key()).collect();

    println!("A 64-page Rx descriptor after allocator aging:\n");
    println!(
        "  Linux (64 x 4 KB allocations): {:>2} distinct PT-L4 pages -> up to {} PTcache-L3 entries",
        linux_regions.len(),
        linux_regions.len()
    );
    println!(
        "  F&S   (1 x 256 KB chunk):      {:>2} distinct PT-L4 pages (paper bound: <= 2)",
        fns_regions.len()
    );
    assert!(fns_regions.len() <= 2, "F&S contiguity bound violated");
    assert!(
        linux_regions.len() > fns_regions.len(),
        "aged stock allocator should scatter"
    );
    println!(
        "\nEvery extra PTcache-L3 entry is a potential extra memory read per \
         IOTLB miss: {} vs {} worst-case walk reads per descriptor.",
        linux_regions.len(),
        fns_regions.len()
    );
}
