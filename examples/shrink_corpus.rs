//! Regenerates the oracle-violation corpus under `tests/corpus/`.
//!
//! Each corpus case arms one seeded driver bug ([`Sabotage`]), replays a
//! seeded random op trace through the audited driver to confirm the
//! oracle catches it, then ddmin-shrinks the trace to a minimal
//! reproducer and writes it out. `tests/oracle_corpus.rs` replays the
//! checked-in files forever after, proving each violation class stays
//! caught.
//!
//! ```sh
//! cargo run --release --example shrink_corpus
//! ```
//!
//! Deterministic: re-running rewrites byte-identical files unless the
//! driver, oracle, or generator changed. If a case no longer violates,
//! this tool exits non-zero rather than writing a vacuous corpus file.

use fns::core::{ProtectionMode, Sabotage};
use fns::harness::mbt::{generate_multi, replay, shrink, violates, CorpusCase, MbtConfig, Op};
use fns::oracle::Invariant;

struct Case {
    file: &'static str,
    comment: &'static str,
    cfg: MbtConfig,
    expect: Invariant,
    seed: u64,
    len: usize,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            file: "skip_inval_fns.txt",
            comment: "F&S batched path: dropping one range invalidation leaves \
                      the whole 64-page descriptor live in the IOTLB",
            cfg: MbtConfig {
                sabotage: Sabotage::SkipRangeInvalidation { nth: 1 },
                ..MbtConfig::for_mode(ProtectionMode::FastAndSafe)
            },
            expect: Invariant::InvalidationCompleteness,
            seed: 0xF45,
            len: 150,
        },
        Case {
            file: "skip_inval_linux_strict.txt",
            comment: "Stock-Linux per-page path: dropping one of the 64 per-page \
                      invalidations of a completion",
            cfg: MbtConfig {
                sabotage: Sabotage::SkipRangeInvalidation { nth: 1 },
                ..MbtConfig::for_mode(ProtectionMode::LinuxStrict)
            },
            expect: Invariant::InvalidationCompleteness,
            seed: 0x11,
            len: 150,
        },
        Case {
            file: "skip_reclaim_fixup.txt",
            comment: "Preserve-mode PT reclamation without the synchronous PTcache \
                      fixup (1024-page descriptors guarantee a fully-covered L4 span)",
            cfg: MbtConfig {
                desc_pages: 1024,
                sabotage: Sabotage::SkipReclaimFixup,
                ..MbtConfig::for_mode(ProtectionMode::FastAndSafe)
            },
            expect: Invariant::PtcacheCoherence,
            seed: 0x9C,
            len: 150,
        },
        Case {
            file: "skip_deferred_flush.txt",
            comment: "Deferred mode with the threshold flush suppressed: the \
                      invalidation backlog outgrows its documented bounded window",
            cfg: MbtConfig {
                deferred_threshold: 64,
                sabotage: Sabotage::SkipDeferredFlush,
                ..MbtConfig::for_mode(ProtectionMode::LinuxDeferred)
            },
            expect: Invariant::InvalidationCompleteness,
            seed: 0xDEF,
            len: 200,
        },
        Case {
            file: "skip_inval_huge.txt",
            comment: "Hugepage-Rx strict mode: dropping the single huge-entry \
                      invalidation of a 512-page descriptor teardown",
            cfg: MbtConfig {
                sabotage: Sabotage::SkipRangeInvalidation { nth: 1 },
                ..MbtConfig::for_mode(ProtectionMode::FnsHugeStrict)
            },
            expect: Invariant::InvalidationCompleteness,
            seed: 0x4E6,
            len: 150,
        },
        Case {
            file: "cross_domain_leak.txt",
            comment: "Two tenants behind one IOMMU: the first map op is aliased \
                      into the other tenant's domain and torn down without \
                      invalidation, so the victim keeps a stale IOTLB entry \
                      onto a frame it never owned",
            cfg: MbtConfig {
                domains: 2,
                sabotage: Sabotage::CrossDomainLeak { nth: 1 },
                ..MbtConfig::for_mode(ProtectionMode::FastAndSafe)
            },
            expect: Invariant::CrossDomainIsolation,
            seed: 11,
            len: 150,
        },
        Case {
            file: "skip_domain_scoped_inval.txt",
            comment: "Deferred mode with domain scoping forgotten: a non-zero \
                      domain's invalidations are dropped and its freed frames \
                      skip quarantine, so its stale IOTLB entries resolve to \
                      frames the other tenant now owns — a violation even \
                      inside the deferred window",
            cfg: MbtConfig {
                domains: 2,
                sabotage: Sabotage::SkipDomainScopedInvalidation,
                ..MbtConfig::for_mode(ProtectionMode::LinuxDeferred)
            },
            expect: Invariant::CrossDomainIsolation,
            seed: 0x14C,
            len: 200,
        },
    ]
}

fn main() {
    let dir = std::path::Path::new("tests/corpus");
    std::fs::create_dir_all(dir).expect("create tests/corpus");
    let mut failed = false;
    for case in cases() {
        let ops = generate_multi(case.seed, case.len, case.cfg.domains);
        let report = replay(case.cfg, &ops);
        if !violates(&report, Some(case.expect)) {
            eprintln!(
                "{}: seed {:#x} no longer violates {} ({})",
                case.file,
                case.seed,
                case.expect.name(),
                report.summary()
            );
            failed = true;
            continue;
        }
        let small: Vec<Op> = shrink(case.cfg, &ops, Some(case.expect));
        let corpus = CorpusCase {
            cfg: case.cfg,
            expect: case.expect,
            ops: small.clone(),
        };
        let text = format!("# {}\n{}", case.comment, corpus.to_text());
        let path = dir.join(case.file);
        std::fs::write(&path, &text).expect("write corpus file");
        println!(
            "{}: {} ops -> {} ops ({})",
            path.display(),
            ops.len(),
            small.len(),
            case.expect.name()
        );
    }
    if failed {
        std::process::exit(1);
    }
}
