//! Disaggregated storage: SPDK-style remote block reads under protection.
//!
//! A storage client pulls 32–256 KB blocks from a remote server at
//! IO-depth 8 (the paper's Figure 11c scenario). Strict protection costs
//! ~40% of read bandwidth; F&S restores it while keeping the NIC unable to
//! touch any buffer whose IOVA has been unmapped.
//!
//! ```sh
//! cargo run --release --example storage_disaggregation
//! ```

use fns::apps::spdk_config;
use fns::core::{HostSim, ProtectionMode};

fn main() {
    println!("Remote block reads at IO-depth 8, 8 client cores, 100 Gbps:\n");
    println!(
        "{:>9} {:>14} {:>12} {:>12}",
        "block", "mode", "throughput", "IOTLB/page"
    );
    for block_kb in [32u64, 128, 256] {
        for mode in [
            ProtectionMode::IommuOff,
            ProtectionMode::LinuxStrict,
            ProtectionMode::FastAndSafe,
        ] {
            let mut cfg = spdk_config(mode, block_kb << 10);
            cfg.measure = 40_000_000;
            let m = HostSim::new(cfg).run();
            println!(
                "{:>7}KB {:>14} {:>10.1} G {:>12.2}",
                block_kb,
                mode.label(),
                m.rx_gbps(),
                m.iotlb_misses_per_page()
            );
        }
        println!();
    }
    println!(
        "Note the small-block penalty (§4.4 of the paper): each read's request \
         packet is a Tx DMA,\nso smaller blocks mean more translations per byte \
         and more IOTLB contention."
    );
}
