//! Fast & Safe IO memory protection (SOSP '24) — full-system reproduction.
//!
//! Facade crate re-exporting every subsystem of the workspace. See the
//! repository README for the architecture overview and `DESIGN.md` for the
//! per-experiment index.

pub use fns_apps as apps;
pub use fns_core as core;
pub use fns_faults as faults;
pub use fns_harness as harness;
pub use fns_iommu as iommu;
pub use fns_iova as iova;
pub use fns_mem as mem;
pub use fns_net as net;
pub use fns_nic as nic;
pub use fns_oracle as oracle;
pub use fns_pcie as pcie;
pub use fns_sim as sim;
pub use fns_snap as snap;
pub use fns_trace as trace;
