//! `fns-sim` — command-line driver for the F&S host simulation.
//!
//! Runs one experiment configuration and prints the standard metric row
//! (plus latency percentiles for RPC workloads).
//!
//! ```text
//! fns-sim [--mode M|--all-modes] [--workload W] [--flows N] [--ring N]
//!         [--mtu BYTES] [--cores N] [--pages-per-desc N] [--measure-ms N]
//!         [--seed N] [--msg BYTES] [--faults P] [--jobs N] [--shards N]
//!         [--trace PATH] [--trace-cats LIST] [--sample-us N]
//!         [--profile] [--metrics-json PATH] [--audit] [--audit-fatal]
//! fns-sim --list-scenarios
//!
//! modes:     off linux deferred linux+A linux+B fns hugepage damn
//! workloads: iperf bidir redis nginx spdk rpc dc-scale
//! ```
//!
//! With `--all-modes` (or any multi-mode invocation) the runs execute on
//! the parallel sweep runner; `--jobs N` sets the worker count (default:
//! `FNS_JOBS` or the machine's parallelism). Results always print in mode
//! order regardless of the job count.
//!
//! Intra-run parallelism: `--shards N` runs each simulation on the
//! sharded engine — the run is partitioned into per-device shards that
//! advance on up to N worker threads and merge at bounded sim-time
//! epochs. Results are bit-identical at every `N >= 1` (the partition
//! depends only on the config, never the thread count); `--shards 0`
//! forces the classic monolithic engine. The `dc-scale` workload ships
//! with the sharded engine on by default.
//!
//! Telemetry: `--trace PATH` records the event trace and writes Chrome
//! `trace_event` JSON (load it at <https://ui.perfetto.dev>); multi-mode
//! sweeps write one file per mode (`out.json` → `out.<mode>.json`).
//! `--trace-cats map,ring,...` narrows the recorded categories (default:
//! all). `--sample-us N` probes the telemetry gauges every N microseconds
//! of sim time; the series rides along in the trace as counter tracks.
//! `--profile` prints the CPU-span attribution table, and
//! `--metrics-json PATH` dumps the full `RunMetrics` as JSON. All of this
//! is deterministic: the same seed yields byte-identical files at any
//! `--jobs` count.
//!
//! Observability: `--observe` arms the full causal plane — per-page
//! provenance timelines, DMA-transaction spans (exported into the
//! `--trace` Chrome JSON as flow-connected async spans), the HDR
//! percentile registry (surfaced on stdout, in `--metrics-json`, and as a
//! streamed time series), and the flight recorder (`--flight PATH` writes
//! its last-events crash ring; abort paths flush it before dying).
//! Individual layers arm via `--provenance`, `--txn`, `--registry`.
//! `--explain-page IOVA` prints one page's full provenance timeline;
//! `--explain-page violation` explains the pages the safety oracle
//! flagged, and any audited violation with provenance armed also writes
//! `target/failure_provenance.txt`. All of it is deterministic and
//! RNG-free: armed or not, the simulated behaviour is bit-identical.
//!
//! Correctness: `--audit` attaches the `fns-oracle` reference model to
//! every run and exits non-zero if any safety invariant was violated;
//! `--audit-fatal` panics at the first violation instead (best combined
//! with a shrunk reproducer from the MBT harness). Auditing consumes no
//! RNG, so metrics match the unaudited run bit for bit.
//!
//! Soak & checkpointing (single-mode only): `--soak NAME` runs a
//! long-horizon aging scenario from the soak registry (`churn`,
//! `iova-frag`, `reclaim-storm`) with the degradation watchdog armed.
//! `--snapshot-every MS` checkpoints the complete simulation state every
//! MS sim-milliseconds to `<prefix>-<t>us.snap` files
//! (`--snapshot-prefix`, default `fns-checkpoint`); `--resume PATH`
//! restores one and continues — the final metrics are bit-identical to
//! the uninterrupted run, provided the same configuration flags are
//! passed (a fingerprint in the snapshot enforces this). A watchdog
//! abort writes a final replayable artifact and exits with status 3.
//! Configurations that cannot be checkpointed (e.g. `--audit-fatal`) are
//! rejected with the named reason, never silently dropped.

use fns::apps::{
    bidirectional_config, churn_config, dc_scale_config, fanin_config, incast_config, iperf_config,
    nginx_config, redis_config, rpc_config, spdk_config,
};
use fns::core::{Engine, HostSim, ProtectionMode, RunMetrics, Sabotage, SimConfig};
use fns::faults::{FaultConfig, FaultKind};
use fns::harness::{soak_config, SweepRunner, SCENARIOS, SOAK_SCENARIOS};
use fns::oracle::AuditConfig;
use fns::trace::{
    chrome_trace_json, chrome_trace_json_with, JsonWriter, ObserveConfig, ProbeConfig, RegMetric,
    SampleSet, Span, TraceCategory, TraceConfig, DEFAULT_TRACE_CAPACITY,
};

/// What `--explain-page` should reconstruct.
#[derive(Debug, Clone, Copy)]
enum ExplainTarget {
    /// The first page(s) the safety oracle flagged this run.
    Violation,
    /// A specific IOVA byte address (pfn = addr >> 12).
    Iova(u64),
}

struct Args {
    modes: Vec<ProtectionMode>,
    workload: String,
    flows: u32,
    ring: u32,
    mtu: u32,
    cores: Option<usize>,
    pages_per_desc: u32,
    measure_ms: Option<u64>,
    seed: u64,
    msg_bytes: u64,
    faults: f64,
    jobs: Option<usize>,
    shards: Option<usize>,
    trace_path: Option<String>,
    trace_mask: u8,
    sample_us: u64,
    profile: bool,
    metrics_json: Option<String>,
    audit: bool,
    audit_fatal: bool,
    soak: Option<String>,
    snapshot_every_ms: u64,
    snapshot_prefix: String,
    resume: Option<String>,
    observe: bool,
    provenance: bool,
    txn: bool,
    registry: bool,
    flight_path: Option<String>,
    explain_page: Option<ExplainTarget>,
    profile_top: Option<usize>,
    sabotage_skip_inv: Option<u64>,
    sabotage_xleak: Option<u64>,
    nics: Option<u16>,
    queues: Option<u16>,
    storage: Option<u16>,
}

fn parse_mode(s: &str) -> Option<ProtectionMode> {
    Some(match s {
        "off" | "iommu-off" => ProtectionMode::IommuOff,
        "linux" | "strict" | "linux-strict" => ProtectionMode::LinuxStrict,
        "deferred" | "lazy" | "linux-deferred" => ProtectionMode::LinuxDeferred,
        "linux+A" | "preserve" => ProtectionMode::LinuxPreserve,
        "linux+B" | "contig" => ProtectionMode::LinuxContig,
        "fns" | "fas" | "fast-and-safe" => ProtectionMode::FastAndSafe,
        "hugepage" | "hugepage-pin" => ProtectionMode::HugepagePinned,
        "damn" | "damn-recycle" => ProtectionMode::DamnRecycle,
        _ => return None,
    })
}

fn usage() -> ! {
    eprintln!(
        "usage: fns-sim [--mode M|--all-modes]\n\
         \x20              [--workload iperf|bidir|redis|nginx|spdk|rpc|fanin|incast|churn|dc-scale]\n\
         \x20              [--flows N] [--ring N] [--mtu BYTES] [--cores N]\n\
         \x20              [--nics N] [--queues N] [--storage N]   multi-device topology overrides\n\
         \x20              [--pages-per-desc N] [--measure-ms N] [--seed N] [--msg BYTES]\n\
         \x20              [--faults P]    inject faults at every site with probability P in [0,1]\n\
         \x20              [--jobs N]      run multi-mode sweeps on N worker threads\n\
         \x20              [--shards N]    sharded engine: up to N shard worker threads per run\n\
         \x20                              (bit-identical at any N >= 1; 0 forces monolithic)\n\
         \x20              [--trace PATH]  write a Chrome trace_event JSON (Perfetto-loadable)\n\
         \x20              [--trace-cats L]  categories to record: all | map,translate,invalidation,ring,fault\n\
         \x20              [--sample-us N] probe telemetry gauges every N us of sim time\n\
         \x20              [--profile]     print the CPU-span attribution table\n\
         \x20              [--metrics-json PATH]  dump full RunMetrics as JSON\n\
         \x20              [--audit]       attach the safety oracle; exit 1 on any violation\n\
         \x20              [--audit-fatal] panic at the first violation (implies --audit)\n\
         \x20              [--soak NAME]   run a long-horizon aging scenario (single-mode)\n\
         \x20              [--snapshot-every MS]  checkpoint every MS sim-ms (single-mode)\n\
         \x20              [--snapshot-prefix P]  checkpoint file prefix (default fns-checkpoint)\n\
         \x20              [--resume PATH] restore a checkpoint and continue (same flags required)\n\
         \x20              [--observe]     arm the full observability plane (provenance+txn+registry+flight)\n\
         \x20              [--provenance]  record per-page provenance timelines\n\
         \x20              [--txn]         record DMA-transaction causal spans (exported with --trace)\n\
         \x20              [--registry]    record HDR latency/occupancy percentiles\n\
         \x20              [--flight PATH] arm the flight recorder; write its crash ring as Chrome JSON\n\
         \x20              [--explain-page IOVA|violation]  print a page's provenance timeline\n\
         \x20              [--profile-top N]  limit the --profile table to the N largest spans\n\
         \x20              [--list-scenarios]  list the named scenario registry and exit\n\
         modes: off linux deferred linux+A linux+B fns hugepage damn"
    );
    std::process::exit(2);
}

fn list_scenarios() -> ! {
    println!("named scenarios (canonical configs from the fns-harness registry):");
    for s in SCENARIOS {
        println!("  {:<18} {}", s.name, s.description);
    }
    println!("soak scenarios (long-horizon aging runs, via --soak):");
    for s in SOAK_SCENARIOS {
        println!("  {:<18} {}", s.name, s.description);
    }
    std::process::exit(0);
}

fn parse_args() -> Args {
    let mut args = Args {
        modes: vec![ProtectionMode::FastAndSafe],
        workload: "iperf".into(),
        flows: 5,
        ring: 256,
        mtu: 4096,
        cores: None,
        pages_per_desc: 64,
        measure_ms: None,
        seed: 1,
        msg_bytes: 8192,
        faults: 0.0,
        jobs: None,
        shards: None,
        trace_path: None,
        trace_mask: TraceCategory::ALL_MASK,
        sample_us: 0,
        profile: false,
        metrics_json: None,
        audit: false,
        audit_fatal: false,
        soak: None,
        snapshot_every_ms: 0,
        snapshot_prefix: "fns-checkpoint".into(),
        resume: None,
        observe: false,
        provenance: false,
        txn: false,
        registry: false,
        flight_path: None,
        explain_page: None,
        profile_top: None,
        sabotage_skip_inv: None,
        sabotage_xleak: None,
        nics: None,
        queues: None,
        storage: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--mode" => {
                let v = val();
                args.modes = vec![parse_mode(&v).unwrap_or_else(|| usage())];
            }
            "--all-modes" => args.modes = ProtectionMode::ALL.to_vec(),
            "--workload" => args.workload = val(),
            "--flows" => args.flows = val().parse().unwrap_or_else(|_| usage()),
            "--ring" => args.ring = val().parse().unwrap_or_else(|_| usage()),
            "--mtu" => args.mtu = val().parse().unwrap_or_else(|_| usage()),
            "--cores" => args.cores = Some(val().parse().unwrap_or_else(|_| usage())),
            "--pages-per-desc" => args.pages_per_desc = val().parse().unwrap_or_else(|_| usage()),
            "--measure-ms" => args.measure_ms = Some(val().parse().unwrap_or_else(|_| usage())),
            "--seed" => args.seed = val().parse().unwrap_or_else(|_| usage()),
            "--msg" => args.msg_bytes = val().parse().unwrap_or_else(|_| usage()),
            "--faults" => {
                args.faults = val().parse().unwrap_or_else(|_| usage());
                if !(0.0..=1.0).contains(&args.faults) {
                    usage()
                }
            }
            "--jobs" => {
                let n: usize = val().parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    usage()
                }
                args.jobs = Some(n);
            }
            "--shards" => args.shards = Some(val().parse().unwrap_or_else(|_| usage())),
            "--trace" => args.trace_path = Some(val()),
            "--trace-cats" => {
                args.trace_mask = TraceCategory::parse_mask(&val()).unwrap_or_else(|| usage());
            }
            "--sample-us" => {
                args.sample_us = val().parse().unwrap_or_else(|_| usage());
                if args.sample_us == 0 {
                    usage()
                }
            }
            "--profile" => args.profile = true,
            "--metrics-json" => args.metrics_json = Some(val()),
            "--audit" => args.audit = true,
            "--audit-fatal" => {
                args.audit = true;
                args.audit_fatal = true;
            }
            "--soak" => args.soak = Some(val()),
            "--snapshot-every" => {
                args.snapshot_every_ms = val().parse().unwrap_or_else(|_| usage());
                if args.snapshot_every_ms == 0 {
                    usage()
                }
            }
            "--snapshot-prefix" => args.snapshot_prefix = val(),
            "--resume" => args.resume = Some(val()),
            "--observe" => args.observe = true,
            "--provenance" => args.provenance = true,
            "--txn" => args.txn = true,
            "--registry" => args.registry = true,
            "--flight" => args.flight_path = Some(val()),
            "--explain-page" => {
                let v = val();
                args.explain_page = Some(if v == "violation" {
                    ExplainTarget::Violation
                } else {
                    let addr = match v.strip_prefix("0x") {
                        Some(hex) => u64::from_str_radix(hex, 16),
                        None => v.parse(),
                    };
                    ExplainTarget::Iova(addr.unwrap_or_else(|_| usage()))
                });
            }
            "--profile-top" => {
                let n: usize = val().parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    usage()
                }
                args.profile_top = Some(n);
            }
            // Undocumented: seed the driver bug the sabotage plane models,
            // so CI can exercise the violation -> provenance-artifact path
            // end to end (single-mode only).
            "--sabotage-skip-inv" => {
                args.sabotage_skip_inv = Some(val().parse().unwrap_or_else(|_| usage()));
            }
            // Undocumented: seed a cross-domain leak (map op `nth` aliased
            // into the next tenant's domain) for the multi-tenant CI smoke.
            "--sabotage-xleak" => {
                args.sabotage_xleak = Some(val().parse().unwrap_or_else(|_| usage()));
            }
            "--nics" => {
                let n: u16 = val().parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    usage()
                }
                args.nics = Some(n);
            }
            "--queues" => {
                let n: u16 = val().parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    usage()
                }
                args.queues = Some(n);
            }
            "--storage" => args.storage = Some(val().parse().unwrap_or_else(|_| usage())),
            "--list-scenarios" => list_scenarios(),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn build_config(args: &Args, mode: ProtectionMode) -> SimConfig {
    let mut cfg = match args.workload.as_str() {
        "iperf" => iperf_config(mode, args.flows, args.ring),
        "bidir" => bidirectional_config(mode, args.flows),
        "redis" => redis_config(mode, args.msg_bytes),
        "nginx" => nginx_config(mode, args.msg_bytes),
        "spdk" => spdk_config(mode, args.msg_bytes),
        "rpc" => rpc_config(mode, args.msg_bytes),
        "fanin" | "mt-fanin" => fanin_config(mode, args.flows),
        "incast" | "mt-incast" => incast_config(mode, args.flows, args.msg_bytes),
        "churn" | "mt-churn" => churn_config(mode, args.flows, args.msg_bytes),
        "dc-scale" | "dcscale" => dc_scale_config(mode),
        _ => usage(),
    };
    if args.workload == "iperf" {
        cfg.mtu = args.mtu;
        cfg.ring_packets = args.ring;
    }
    if let Some(c) = args.cores {
        cfg.cores = c;
    }
    // Topology overrides layer on top of whatever the workload chose (the
    // mt-* workloads default to 2 NICs x 4 queues + 1 storage device).
    if let Some(n) = args.nics {
        cfg.topology.nics = n;
    }
    if let Some(q) = args.queues {
        cfg.topology.queues_per_nic = q;
    }
    if let Some(s) = args.storage {
        cfg.topology.storage_devices = s;
    }
    if let Some(s) = args.shards {
        cfg.shards = s;
    }
    if let Some(nth) = args.sabotage_xleak {
        cfg.sabotage = Sabotage::CrossDomainLeak { nth };
    }
    cfg.pages_per_descriptor = args.pages_per_desc;
    cfg.measure = args.measure_ms.unwrap_or(60) * 1_000_000;
    cfg.seed = args.seed;
    cfg.faults = FaultConfig::uniform(args.faults);
    apply_telemetry_flags(args, &mut cfg);
    cfg
}

/// Config for `--soak NAME`: the registry's soak shape (long horizon,
/// probes on, watchdog armed), with the CLI overrides that make sense for
/// a soak layered on top.
fn build_soak_config(args: &Args, mode: ProtectionMode) -> SimConfig {
    let name = args.soak.as_deref().expect("caller checked --soak");
    let mut cfg = soak_config(name, mode).unwrap_or_else(|| {
        eprintln!("fns-sim: unknown soak scenario '{name}' (see --list-scenarios)");
        std::process::exit(2);
    });
    if let Some(ms) = args.measure_ms {
        cfg.measure = ms * 1_000_000;
    }
    if let Some(c) = args.cores {
        cfg.cores = c;
    }
    if let Some(s) = args.shards {
        cfg.shards = s;
    }
    cfg.seed = args.seed;
    if args.faults > 0.0 {
        cfg.faults = FaultConfig::uniform(args.faults);
    }
    apply_telemetry_flags(args, &mut cfg);
    cfg
}

fn apply_telemetry_flags(args: &Args, cfg: &mut SimConfig) {
    if args.trace_path.is_some() {
        cfg.trace = TraceConfig {
            mask: args.trace_mask,
            capacity: DEFAULT_TRACE_CAPACITY,
        };
    }
    if args.sample_us > 0 {
        cfg.probes = ProbeConfig::every(args.sample_us * 1_000);
    }
    if args.audit {
        cfg.audit = AuditConfig {
            enabled: true,
            fatal: args.audit_fatal,
        };
    }
    if args.observe {
        cfg.observe = ObserveConfig::full();
    }
    if args.provenance || args.explain_page.is_some() {
        cfg.observe.provenance = true;
    }
    if let Some(ExplainTarget::Iova(addr)) = args.explain_page {
        // Focused book: track only the page being explained, so the
        // timeline is never evicted no matter how long the run is.
        cfg.observe.prov_focus = addr >> 12;
    }
    if args.txn {
        cfg.observe.txn = true;
    }
    if args.registry {
        cfg.observe.registry = true;
    }
    if args.flight_path.is_some() {
        cfg.observe.flight = true;
    }
}

/// Checkpoint file path at sim time `t` — zero-padded microseconds so the
/// files sort lexically in time order.
fn checkpoint_path(prefix: &str, t: u64) -> String {
    format!("{}-{:010}us.snap", prefix, t / 1_000)
}

fn write_bytes_or_die(path: &str, contents: &[u8]) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("fns-sim: cannot write {path}: {e}");
        std::process::exit(1);
    }
}

/// The checkpointed single-run path behind `--soak`, `--snapshot-every`
/// and `--resume`: steps the simulation between checkpoint boundaries,
/// writes each checkpoint to disk as soon as it is taken (so a killed run
/// loses at most one interval), and converts a degradation-watchdog abort
/// into a final replayable artifact. Returns the metrics and whether the
/// watchdog aborted.
fn run_checkpointed(args: &Args, mode: ProtectionMode) -> (RunMetrics, bool) {
    let cfg = if args.soak.is_some() {
        build_soak_config(args, mode)
    } else {
        build_config(args, mode)
    };
    if args.snapshot_every_ms > 0 || args.resume.is_some() {
        if let Some(reason) = cfg.snapshot_ineligibility() {
            eprintln!("fns-sim: this configuration cannot be checkpointed: {reason}");
            std::process::exit(2);
        }
    }
    let mut sim = match &args.resume {
        Some(path) => {
            let bytes = std::fs::read(path).unwrap_or_else(|e| {
                eprintln!("fns-sim: cannot read {path}: {e}");
                std::process::exit(1);
            });
            let sim = Engine::restore(cfg, &bytes).unwrap_or_else(|e| {
                eprintln!(
                    "fns-sim: cannot resume from {path}: {e:?} (the resuming invocation \
                     must rebuild the snapshotted configuration with the same flags, \
                     and under the same engine family — sharded checkpoints resume at \
                     any --shards >= 1, monolithic ones at --shards 0)"
                );
                std::process::exit(1);
            });
            println!("resumed from {} at t={} ns", path, sim.now());
            sim
        }
        None => Engine::new(cfg),
    };
    let end = cfg.end_time();
    let every = args.snapshot_every_ms * 1_000_000;
    let mut aborted = false;
    // A resumed run re-aligns to the original checkpoint grid, so its
    // boundaries (and files) match the run it was carved out of.
    let mut t = sim.now();
    loop {
        let next = t
            .checked_div(every)
            .map_or(end, |n| ((n + 1) * every).min(end));
        sim.step_until(next);
        t = next;
        if sim.watchdog_aborted() {
            let path = checkpoint_path(&args.snapshot_prefix, t);
            write_bytes_or_die(&path, &sim.snapshot());
            eprintln!(
                "fns-sim: watchdog aborted the run at t={t} ns; replayable artifact -> {path}"
            );
            aborted = true;
            break;
        }
        if t >= end {
            break;
        }
        if every > 0 {
            let path = checkpoint_path(&args.snapshot_prefix, t);
            write_bytes_or_die(&path, &sim.snapshot());
            println!("checkpoint: t={t} ns -> {path}");
        }
    }
    (sim.finish(), aborted)
}

/// Output path for one mode of a (possibly multi-mode) sweep: the exact
/// path for a single mode, `stem.<mode>.ext` otherwise.
fn mode_path(path: &str, mode: ProtectionMode, multi: bool) -> String {
    if !multi {
        return path.to_string();
    }
    match path.rsplit_once('.') {
        Some((stem, ext)) => format!("{}.{}.{}", stem, mode.label(), ext),
        None => format!("{}.{}", path, mode.label()),
    }
}

fn write_or_die(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("fns-sim: cannot write {path}: {e}");
        std::process::exit(1);
    }
}

fn print_profile(mode: ProtectionMode, m: &RunMetrics, top: Option<usize>) {
    let total = m.spans.total_ns();
    let pct = |ns: u64| {
        if total > 0 {
            ns as f64 * 100.0 / total as f64
        } else {
            0.0
        }
    };
    let mut ranked: Vec<Span> = Span::ALL.to_vec();
    ranked.sort_by_key(|s| std::cmp::Reverse(m.spans.get(*s)));
    // Digest first — the one-line summary perf triage greps for, ahead of
    // the table so it survives a `| head -2`.
    let digest: Vec<String> = ranked
        .iter()
        .take(3)
        .map(|s| format!("{} {:.1}%", s.name(), pct(m.spans.get(*s))))
        .collect();
    println!(
        "{:>14}  top spans: {}  ({} ns total)",
        mode.label(),
        digest.join(", "),
        total
    );
    // Then the full attribution table (largest first), clipped to
    // `--profile-top N` when given.
    for span in ranked.iter().take(top.unwrap_or(Span::ALL.len())) {
        let ns = m.spans.get(*span);
        println!(
            "{:>14}    {:<18} {:>14} ns  {:5.1}%",
            "",
            span.name(),
            ns,
            pct(ns)
        );
    }
}

fn print_result(args: &Args, mode: ProtectionMode, m: &RunMetrics) {
    println!(
        "{:>14}  rx {:6.1} Gbps  tx {:6.1} Gbps  drops {:5.2}%  iotlb/pg {:5.2}  \
         ptcache l1/l2/l3 {:.3}/{:.3}/{:.3}  M {:5.2}  cpu {:4.2}  safety {}",
        mode.label(),
        m.rx_gbps(),
        m.tx_gbps(),
        m.drop_rate() * 100.0,
        m.iotlb_misses_per_page(),
        m.l1_misses_per_page(),
        m.l2_misses_per_page(),
        m.l3_misses_per_page(),
        m.memory_reads_per_page(),
        m.max_cpu(),
        if mode == ProtectionMode::IommuOff {
            "none"
        } else if mode.is_strict_safe() {
            "strict"
        } else {
            "weakened"
        },
    );
    if m.domains.len() > 1 {
        for (d, ds) in m.domains.iter().enumerate() {
            println!(
                "{:>14}  domain {}: {} translations  {} iotlb-hits  {} stale-hits  {} faults",
                "", d, ds.translations, ds.iotlb_hits, ds.stale_iotlb_hits, ds.faults,
            );
        }
    }
    if args.faults > 0.0 {
        println!(
            "{:>14}  faults: {} injected  {} recovered  {} inv-retries  {} batch-fallbacks  \
             {} recycles  stale-dma {} blocked / {} leaked",
            "",
            m.faults.total_injected(),
            m.faults.total_recovered(),
            m.faults.invalidation_retries,
            m.faults.batch_fallbacks,
            m.faults.descriptor_recycles,
            m.faults.stale_dma_blocked,
            m.faults.stale_dma_leaked,
        );
    }
    if m.watchdog.enabled {
        println!(
            "{:>14}  watchdog: {} checks  {} relief-drains  {} storms  max-backlog {}  \
             degraded {}  aborted {}",
            "",
            m.watchdog.checks,
            m.watchdog.relief_drains,
            m.watchdog.storms,
            m.watchdog.max_backlog_seen,
            m.watchdog.degraded,
            m.watchdog.aborted,
        );
    }
    if m.provenance.enabled || m.txns.enabled || m.registry.enabled {
        println!(
            "{:>14}  obs: provenance {} page(s) ({} dropped)  txns {} completed / {} open \
             ({} dropped)  registry {} key(s)",
            "",
            m.provenance.pages.len(),
            m.provenance.dropped_pages,
            m.txns.records.len(),
            m.txns.open,
            m.txns.dropped,
            m.registry.stats.len(),
        );
    }
    if m.registry.enabled {
        let (count, p50, p99, p999) = m.registry.percentiles(RegMetric::DescLatency);
        let (_, _, inv_p99, _) = m.registry.percentiles(RegMetric::InvWait);
        if count > 0 {
            println!(
                "{:>14}  desc latency ns: p50 {}  p99 {}  p999 {}  ({} descs)  inv-wait p99 {}",
                "", p50, p99, p999, count, inv_p99,
            );
        }
    }
    if args.workload == "rpc" && m.latency.count() > 0 {
        let p = |q: f64| m.latency.percentile(q) as f64 / 1000.0;
        println!(
            "{:>14}  rpc latency us: p50 {:.1}  p90 {:.1}  p99 {:.1}  p99.9 {:.1}  p99.99 {:.1}",
            "",
            p(50.0),
            p(90.0),
            p(99.0),
            p(99.9),
            p(99.99)
        );
    }
}

fn main() {
    let args = parse_args();
    match &args.soak {
        Some(name) => println!(
            "soak={} measure={}ms seed={}",
            name,
            args.measure_ms.unwrap_or(10_000),
            args.seed
        ),
        None => println!(
            "workload={} flows={} ring={} mtu={} pages/desc={} measure={}ms seed={}",
            args.workload,
            args.flows,
            args.ring,
            args.mtu,
            args.pages_per_desc,
            args.measure_ms.unwrap_or(60),
            args.seed
        ),
    }
    let modes = args.modes.clone();
    let checkpointed = args.soak.is_some() || args.snapshot_every_ms > 0 || args.resume.is_some();
    let mut aborted = false;
    let results = if checkpointed {
        if modes.len() > 1 {
            eprintln!(
                "fns-sim: --soak/--snapshot-every/--resume run a single mode \
                 (got {}); pass --mode",
                modes.len()
            );
            std::process::exit(2);
        }
        let (m, a) = run_checkpointed(&args, modes[0]);
        aborted = a;
        vec![m]
    } else if args.sabotage_skip_inv.is_some() || (args.audit_fatal && args.flight_path.is_some()) {
        // Instrumented single-run path: a seeded sabotage needs a hand on
        // the driver before the run, and a fatal audit with the flight
        // recorder armed needs the ring flushed when the oracle panics.
        if modes.len() > 1 {
            eprintln!(
                "fns-sim: --sabotage-skip-inv / --audit-fatal --flight run a single mode \
                 (got {}); pass --mode",
                modes.len()
            );
            std::process::exit(2);
        }
        let mut cfg = build_config(&args, modes[0]);
        // The instrumented path needs direct hands on one HostSim (the
        // sabotage hook and the mid-panic flight-recorder flush live
        // there), so it always runs the monolithic engine.
        cfg.shards = 0;
        let mut sim = HostSim::new(cfg);
        if let Some(nth) = args.sabotage_skip_inv {
            sim.set_sabotage(Sabotage::SkipRangeInvalidation { nth });
        }
        let end = cfg.end_time();
        let stepped =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.step_until(end)));
        if let Err(panic) = stepped {
            // The fatal oracle (or anything else) panicked mid-run: flush
            // the flight-recorder crash ring so the last events leading up
            // to the abort survive as an artifact, then keep dying.
            if let Some(path) = &args.flight_path {
                let flight = sim.flight_view();
                write_or_die(
                    path,
                    &chrome_trace_json(&flight, &SampleSet::default(), &[]),
                );
                eprintln!(
                    "fns-sim: panic mid-run; flight recorder ({} events) -> {path}",
                    flight.len()
                );
            }
            std::panic::resume_unwind(panic);
        }
        vec![sim.finish()]
    } else {
        let runner = match args.jobs {
            Some(n) => SweepRunner::new(n),
            None => SweepRunner::from_env(),
        };
        let configs = modes
            .iter()
            .map(|&mode| build_config(&args, mode))
            .collect();
        runner.run_sims(configs)
    };
    let mut audit_violations = 0u64;
    for (mode, m) in modes.iter().zip(results.iter()) {
        print_result(&args, *mode, m);
        assert_eq!(m.stale_ptcache_walks, 0, "use-after-free walk detected");
        if args.audit {
            println!("{:>14}  {}", "", m.audit.summary());
            for v in &m.audit.samples {
                println!(
                    "{:>14}    [{}] pfn {:#x} at check {}: {}",
                    "",
                    v.invariant.name(),
                    v.pfn,
                    v.check,
                    v.detail
                );
            }
            audit_violations += m.audit.violations;
        }
        if args.profile {
            print_profile(*mode, m, args.profile_top);
        }
        if let Some(target) = &args.explain_page {
            let pfns: Vec<u64> = match target {
                ExplainTarget::Violation => m.audit.violating_pfns(),
                ExplainTarget::Iova(addr) => vec![addr >> 12],
            };
            if pfns.is_empty() {
                println!("{:>14}  explain: no violating pages this run", "");
            }
            for pfn in pfns {
                print!("{}", m.provenance.explain(pfn));
            }
        }
    }
    let multi = modes.len() > 1;
    if let Some(path) = &args.trace_path {
        let fault_kinds: Vec<&str> = FaultKind::ALL.iter().map(|k| k.name()).collect();
        for (mode, m) in modes.iter().zip(results.iter()) {
            let out = mode_path(path, *mode, multi);
            write_or_die(
                &out,
                &chrome_trace_json_with(&m.trace, &m.samples, &fault_kinds, &m.txns),
            );
            println!(
                "trace: {} events ({} dropped), {} samples, {} txn spans -> {}",
                m.trace.len(),
                m.trace.dropped,
                m.samples.samples.len(),
                m.txns.records.len(),
                out
            );
        }
    }
    if let Some(path) = &args.flight_path {
        // The crash ring of a *completed* run: the final window of events.
        // (Abort paths flush the live ring before dying instead.)
        for (mode, m) in modes.iter().zip(results.iter()) {
            let out = mode_path(path, *mode, multi);
            write_or_die(
                &out,
                &chrome_trace_json(&m.flight, &SampleSet::default(), &[]),
            );
            println!(
                "flight: {} events ({} dropped) -> {}",
                m.flight.len(),
                m.flight.dropped,
                out
            );
        }
    }
    if let Some(path) = &args.metrics_json {
        let mut w = JsonWriter::with_capacity(4096);
        w.begin_object();
        w.key("workload");
        w.string(&args.workload);
        w.key("seed");
        w.u64(args.seed);
        w.key("runs");
        w.begin_array();
        for (mode, m) in modes.iter().zip(results.iter()) {
            w.begin_object();
            w.key("mode");
            w.string(mode.label());
            w.key("metrics");
            w.raw(&m.to_json());
            w.end_object();
        }
        w.end_array();
        w.end_object();
        write_or_die(path, &w.finish());
        println!("metrics: {} run(s) -> {}", results.len(), path);
    }
    if audit_violations > 0 {
        // Failure artifact: when provenance was armed, dump the violating
        // pages' full timelines so the bug is diagnosable from the run
        // that caught it (reproducible via `--explain-page violation`).
        let mut artifact = String::new();
        for (mode, m) in modes.iter().zip(results.iter()) {
            if !m.provenance.enabled || m.audit.violations == 0 {
                continue;
            }
            // Name every violated invariant up front (the smoke greps for
            // e.g. `cross-domain-isolation`), then dump the page timelines.
            for v in &m.audit.samples {
                artifact.push_str(&format!(
                    "mode {}: [{}] pfn {:#x} at check {}: {}\n",
                    mode.label(),
                    v.invariant.name(),
                    v.pfn,
                    v.check,
                    v.detail
                ));
            }
            for pfn in m.audit.violating_pfns() {
                artifact.push_str(&format!(
                    "mode {}: violation at pfn {:#x}\n",
                    mode.label(),
                    pfn
                ));
                artifact.push_str(&m.provenance.explain(pfn));
            }
        }
        if !artifact.is_empty() {
            std::fs::create_dir_all("target").ok();
            write_or_die("target/failure_provenance.txt", &artifact);
            eprintln!("fns-sim: violating-page timelines -> target/failure_provenance.txt");
        }
        eprintln!("fns-sim: safety audit found {audit_violations} violation(s)");
        std::process::exit(1);
    }
    if aborted {
        std::process::exit(3);
    }
}
