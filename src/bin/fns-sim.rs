//! `fns-sim` — command-line driver for the F&S host simulation.
//!
//! Runs one experiment configuration and prints the standard metric row
//! (plus latency percentiles for RPC workloads).
//!
//! ```text
//! fns-sim [--mode M|--all-modes] [--workload W] [--flows N] [--ring N]
//!         [--mtu BYTES] [--cores N] [--pages-per-desc N] [--measure-ms N]
//!         [--seed N] [--msg BYTES] [--faults P] [--jobs N]
//!         [--trace PATH] [--trace-cats LIST] [--sample-us N]
//!         [--profile] [--metrics-json PATH] [--audit] [--audit-fatal]
//! fns-sim --list-scenarios
//!
//! modes:     off linux deferred linux+A linux+B fns hugepage damn
//! workloads: iperf bidir redis nginx spdk rpc
//! ```
//!
//! With `--all-modes` (or any multi-mode invocation) the runs execute on
//! the parallel sweep runner; `--jobs N` sets the worker count (default:
//! `FNS_JOBS` or the machine's parallelism). Results always print in mode
//! order regardless of the job count.
//!
//! Telemetry: `--trace PATH` records the event trace and writes Chrome
//! `trace_event` JSON (load it at <https://ui.perfetto.dev>); multi-mode
//! sweeps write one file per mode (`out.json` → `out.<mode>.json`).
//! `--trace-cats map,ring,...` narrows the recorded categories (default:
//! all). `--sample-us N` probes the telemetry gauges every N microseconds
//! of sim time; the series rides along in the trace as counter tracks.
//! `--profile` prints the CPU-span attribution table, and
//! `--metrics-json PATH` dumps the full `RunMetrics` as JSON. All of this
//! is deterministic: the same seed yields byte-identical files at any
//! `--jobs` count.
//!
//! Correctness: `--audit` attaches the `fns-oracle` reference model to
//! every run and exits non-zero if any safety invariant was violated;
//! `--audit-fatal` panics at the first violation instead (best combined
//! with a shrunk reproducer from the MBT harness). Auditing consumes no
//! RNG, so metrics match the unaudited run bit for bit.
//!
//! Soak & checkpointing (single-mode only): `--soak NAME` runs a
//! long-horizon aging scenario from the soak registry (`churn`,
//! `iova-frag`, `reclaim-storm`) with the degradation watchdog armed.
//! `--snapshot-every MS` checkpoints the complete simulation state every
//! MS sim-milliseconds to `<prefix>-<t>us.snap` files
//! (`--snapshot-prefix`, default `fns-checkpoint`); `--resume PATH`
//! restores one and continues — the final metrics are bit-identical to
//! the uninterrupted run, provided the same configuration flags are
//! passed (a fingerprint in the snapshot enforces this). A watchdog
//! abort writes a final replayable artifact and exits with status 3.
//! Configurations that cannot be checkpointed (e.g. `--audit-fatal`) are
//! rejected with the named reason, never silently dropped.

use fns::apps::{
    bidirectional_config, iperf_config, nginx_config, redis_config, rpc_config, spdk_config,
};
use fns::core::{HostSim, ProtectionMode, RunMetrics, SimConfig};
use fns::faults::{FaultConfig, FaultKind};
use fns::harness::{soak_config, SweepRunner, SCENARIOS, SOAK_SCENARIOS};
use fns::oracle::AuditConfig;
use fns::trace::{
    chrome_trace_json, JsonWriter, ProbeConfig, Span, TraceCategory, TraceConfig,
    DEFAULT_TRACE_CAPACITY,
};

struct Args {
    modes: Vec<ProtectionMode>,
    workload: String,
    flows: u32,
    ring: u32,
    mtu: u32,
    cores: Option<usize>,
    pages_per_desc: u32,
    measure_ms: Option<u64>,
    seed: u64,
    msg_bytes: u64,
    faults: f64,
    jobs: Option<usize>,
    trace_path: Option<String>,
    trace_mask: u8,
    sample_us: u64,
    profile: bool,
    metrics_json: Option<String>,
    audit: bool,
    audit_fatal: bool,
    soak: Option<String>,
    snapshot_every_ms: u64,
    snapshot_prefix: String,
    resume: Option<String>,
}

fn parse_mode(s: &str) -> Option<ProtectionMode> {
    Some(match s {
        "off" | "iommu-off" => ProtectionMode::IommuOff,
        "linux" | "strict" | "linux-strict" => ProtectionMode::LinuxStrict,
        "deferred" | "lazy" | "linux-deferred" => ProtectionMode::LinuxDeferred,
        "linux+A" | "preserve" => ProtectionMode::LinuxPreserve,
        "linux+B" | "contig" => ProtectionMode::LinuxContig,
        "fns" | "fas" | "fast-and-safe" => ProtectionMode::FastAndSafe,
        "hugepage" | "hugepage-pin" => ProtectionMode::HugepagePinned,
        "damn" | "damn-recycle" => ProtectionMode::DamnRecycle,
        _ => return None,
    })
}

fn usage() -> ! {
    eprintln!(
        "usage: fns-sim [--mode M|--all-modes] [--workload iperf|bidir|redis|nginx|spdk|rpc]\n\
         \x20              [--flows N] [--ring N] [--mtu BYTES] [--cores N]\n\
         \x20              [--pages-per-desc N] [--measure-ms N] [--seed N] [--msg BYTES]\n\
         \x20              [--faults P]    inject faults at every site with probability P in [0,1]\n\
         \x20              [--jobs N]      run multi-mode sweeps on N worker threads\n\
         \x20              [--trace PATH]  write a Chrome trace_event JSON (Perfetto-loadable)\n\
         \x20              [--trace-cats L]  categories to record: all | map,translate,invalidation,ring,fault\n\
         \x20              [--sample-us N] probe telemetry gauges every N us of sim time\n\
         \x20              [--profile]     print the CPU-span attribution table\n\
         \x20              [--metrics-json PATH]  dump full RunMetrics as JSON\n\
         \x20              [--audit]       attach the safety oracle; exit 1 on any violation\n\
         \x20              [--audit-fatal] panic at the first violation (implies --audit)\n\
         \x20              [--soak NAME]   run a long-horizon aging scenario (single-mode)\n\
         \x20              [--snapshot-every MS]  checkpoint every MS sim-ms (single-mode)\n\
         \x20              [--snapshot-prefix P]  checkpoint file prefix (default fns-checkpoint)\n\
         \x20              [--resume PATH] restore a checkpoint and continue (same flags required)\n\
         \x20              [--list-scenarios]  list the named scenario registry and exit\n\
         modes: off linux deferred linux+A linux+B fns hugepage damn"
    );
    std::process::exit(2);
}

fn list_scenarios() -> ! {
    println!("named scenarios (canonical configs from the fns-harness registry):");
    for s in SCENARIOS {
        println!("  {:<18} {}", s.name, s.description);
    }
    println!("soak scenarios (long-horizon aging runs, via --soak):");
    for s in SOAK_SCENARIOS {
        println!("  {:<18} {}", s.name, s.description);
    }
    std::process::exit(0);
}

fn parse_args() -> Args {
    let mut args = Args {
        modes: vec![ProtectionMode::FastAndSafe],
        workload: "iperf".into(),
        flows: 5,
        ring: 256,
        mtu: 4096,
        cores: None,
        pages_per_desc: 64,
        measure_ms: None,
        seed: 1,
        msg_bytes: 8192,
        faults: 0.0,
        jobs: None,
        trace_path: None,
        trace_mask: TraceCategory::ALL_MASK,
        sample_us: 0,
        profile: false,
        metrics_json: None,
        audit: false,
        audit_fatal: false,
        soak: None,
        snapshot_every_ms: 0,
        snapshot_prefix: "fns-checkpoint".into(),
        resume: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--mode" => {
                let v = val();
                args.modes = vec![parse_mode(&v).unwrap_or_else(|| usage())];
            }
            "--all-modes" => args.modes = ProtectionMode::ALL.to_vec(),
            "--workload" => args.workload = val(),
            "--flows" => args.flows = val().parse().unwrap_or_else(|_| usage()),
            "--ring" => args.ring = val().parse().unwrap_or_else(|_| usage()),
            "--mtu" => args.mtu = val().parse().unwrap_or_else(|_| usage()),
            "--cores" => args.cores = Some(val().parse().unwrap_or_else(|_| usage())),
            "--pages-per-desc" => args.pages_per_desc = val().parse().unwrap_or_else(|_| usage()),
            "--measure-ms" => args.measure_ms = Some(val().parse().unwrap_or_else(|_| usage())),
            "--seed" => args.seed = val().parse().unwrap_or_else(|_| usage()),
            "--msg" => args.msg_bytes = val().parse().unwrap_or_else(|_| usage()),
            "--faults" => {
                args.faults = val().parse().unwrap_or_else(|_| usage());
                if !(0.0..=1.0).contains(&args.faults) {
                    usage()
                }
            }
            "--jobs" => {
                let n: usize = val().parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    usage()
                }
                args.jobs = Some(n);
            }
            "--trace" => args.trace_path = Some(val()),
            "--trace-cats" => {
                args.trace_mask = TraceCategory::parse_mask(&val()).unwrap_or_else(|| usage());
            }
            "--sample-us" => {
                args.sample_us = val().parse().unwrap_or_else(|_| usage());
                if args.sample_us == 0 {
                    usage()
                }
            }
            "--profile" => args.profile = true,
            "--metrics-json" => args.metrics_json = Some(val()),
            "--audit" => args.audit = true,
            "--audit-fatal" => {
                args.audit = true;
                args.audit_fatal = true;
            }
            "--soak" => args.soak = Some(val()),
            "--snapshot-every" => {
                args.snapshot_every_ms = val().parse().unwrap_or_else(|_| usage());
                if args.snapshot_every_ms == 0 {
                    usage()
                }
            }
            "--snapshot-prefix" => args.snapshot_prefix = val(),
            "--resume" => args.resume = Some(val()),
            "--list-scenarios" => list_scenarios(),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn build_config(args: &Args, mode: ProtectionMode) -> SimConfig {
    let mut cfg = match args.workload.as_str() {
        "iperf" => iperf_config(mode, args.flows, args.ring),
        "bidir" => bidirectional_config(mode, args.flows),
        "redis" => redis_config(mode, args.msg_bytes),
        "nginx" => nginx_config(mode, args.msg_bytes),
        "spdk" => spdk_config(mode, args.msg_bytes),
        "rpc" => rpc_config(mode, args.msg_bytes),
        _ => usage(),
    };
    if args.workload == "iperf" {
        cfg.mtu = args.mtu;
        cfg.ring_packets = args.ring;
    }
    if let Some(c) = args.cores {
        cfg.cores = c;
    }
    cfg.pages_per_descriptor = args.pages_per_desc;
    cfg.measure = args.measure_ms.unwrap_or(60) * 1_000_000;
    cfg.seed = args.seed;
    cfg.faults = FaultConfig::uniform(args.faults);
    apply_telemetry_flags(args, &mut cfg);
    cfg
}

/// Config for `--soak NAME`: the registry's soak shape (long horizon,
/// probes on, watchdog armed), with the CLI overrides that make sense for
/// a soak layered on top.
fn build_soak_config(args: &Args, mode: ProtectionMode) -> SimConfig {
    let name = args.soak.as_deref().expect("caller checked --soak");
    let mut cfg = soak_config(name, mode).unwrap_or_else(|| {
        eprintln!("fns-sim: unknown soak scenario '{name}' (see --list-scenarios)");
        std::process::exit(2);
    });
    if let Some(ms) = args.measure_ms {
        cfg.measure = ms * 1_000_000;
    }
    if let Some(c) = args.cores {
        cfg.cores = c;
    }
    cfg.seed = args.seed;
    if args.faults > 0.0 {
        cfg.faults = FaultConfig::uniform(args.faults);
    }
    apply_telemetry_flags(args, &mut cfg);
    cfg
}

fn apply_telemetry_flags(args: &Args, cfg: &mut SimConfig) {
    if args.trace_path.is_some() {
        cfg.trace = TraceConfig {
            mask: args.trace_mask,
            capacity: DEFAULT_TRACE_CAPACITY,
        };
    }
    if args.sample_us > 0 {
        cfg.probes = ProbeConfig::every(args.sample_us * 1_000);
    }
    if args.audit {
        cfg.audit = AuditConfig {
            enabled: true,
            fatal: args.audit_fatal,
        };
    }
}

/// Checkpoint file path at sim time `t` — zero-padded microseconds so the
/// files sort lexically in time order.
fn checkpoint_path(prefix: &str, t: u64) -> String {
    format!("{}-{:010}us.snap", prefix, t / 1_000)
}

fn write_bytes_or_die(path: &str, contents: &[u8]) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("fns-sim: cannot write {path}: {e}");
        std::process::exit(1);
    }
}

/// The checkpointed single-run path behind `--soak`, `--snapshot-every`
/// and `--resume`: steps the simulation between checkpoint boundaries,
/// writes each checkpoint to disk as soon as it is taken (so a killed run
/// loses at most one interval), and converts a degradation-watchdog abort
/// into a final replayable artifact. Returns the metrics and whether the
/// watchdog aborted.
fn run_checkpointed(args: &Args, mode: ProtectionMode) -> (RunMetrics, bool) {
    let cfg = if args.soak.is_some() {
        build_soak_config(args, mode)
    } else {
        build_config(args, mode)
    };
    if args.snapshot_every_ms > 0 || args.resume.is_some() {
        if let Some(reason) = cfg.snapshot_ineligibility() {
            eprintln!("fns-sim: this configuration cannot be checkpointed: {reason}");
            std::process::exit(2);
        }
    }
    let mut sim = match &args.resume {
        Some(path) => {
            let bytes = std::fs::read(path).unwrap_or_else(|e| {
                eprintln!("fns-sim: cannot read {path}: {e}");
                std::process::exit(1);
            });
            let sim = HostSim::restore(cfg, &bytes).unwrap_or_else(|e| {
                eprintln!(
                    "fns-sim: cannot resume from {path}: {e:?} (the resuming invocation \
                     must rebuild the snapshotted configuration with the same flags)"
                );
                std::process::exit(1);
            });
            println!("resumed from {} at t={} ns", path, sim.now());
            sim
        }
        None => HostSim::new(cfg),
    };
    let end = cfg.end_time();
    let every = args.snapshot_every_ms * 1_000_000;
    let mut aborted = false;
    // A resumed run re-aligns to the original checkpoint grid, so its
    // boundaries (and files) match the run it was carved out of.
    let mut t = sim.now();
    loop {
        let next = t
            .checked_div(every)
            .map_or(end, |n| ((n + 1) * every).min(end));
        sim.step_until(next);
        t = next;
        if sim.watchdog_aborted() {
            let path = checkpoint_path(&args.snapshot_prefix, t);
            write_bytes_or_die(&path, &sim.snapshot());
            eprintln!(
                "fns-sim: watchdog aborted the run at t={t} ns; replayable artifact -> {path}"
            );
            aborted = true;
            break;
        }
        if t >= end {
            break;
        }
        if every > 0 {
            let path = checkpoint_path(&args.snapshot_prefix, t);
            write_bytes_or_die(&path, &sim.snapshot());
            println!("checkpoint: t={t} ns -> {path}");
        }
    }
    (sim.finish(), aborted)
}

/// Output path for one mode of a (possibly multi-mode) sweep: the exact
/// path for a single mode, `stem.<mode>.ext` otherwise.
fn mode_path(path: &str, mode: ProtectionMode, multi: bool) -> String {
    if !multi {
        return path.to_string();
    }
    match path.rsplit_once('.') {
        Some((stem, ext)) => format!("{}.{}.{}", stem, mode.label(), ext),
        None => format!("{}.{}", path, mode.label()),
    }
}

fn write_or_die(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("fns-sim: cannot write {path}: {e}");
        std::process::exit(1);
    }
}

fn print_profile(mode: ProtectionMode, m: &RunMetrics) {
    let total = m.spans.total_ns();
    println!(
        "{:>14}  CPU-span attribution ({} ns total):",
        mode.label(),
        total
    );
    for span in Span::ALL {
        let ns = m.spans.get(span);
        let pct = if total > 0 {
            ns as f64 * 100.0 / total as f64
        } else {
            0.0
        };
        println!(
            "{:>14}    {:<18} {:>14} ns  {:5.1}%",
            "",
            span.name(),
            ns,
            pct
        );
    }
    // A one-line digest of where the modelled CPU went: the three largest
    // buckets, largest first. This is the line perf triage greps for.
    let mut ranked: Vec<Span> = Span::ALL.to_vec();
    ranked.sort_by_key(|s| std::cmp::Reverse(m.spans.get(*s)));
    let top: Vec<String> = ranked
        .iter()
        .take(3)
        .map(|s| {
            let pct = if total > 0 {
                m.spans.get(*s) as f64 * 100.0 / total as f64
            } else {
                0.0
            };
            format!("{} {:.1}%", s.name(), pct)
        })
        .collect();
    println!("{:>14}  top spans: {}", "", top.join(", "));
}

fn print_result(args: &Args, mode: ProtectionMode, m: &RunMetrics) {
    println!(
        "{:>14}  rx {:6.1} Gbps  tx {:6.1} Gbps  drops {:5.2}%  iotlb/pg {:5.2}  \
         ptcache l1/l2/l3 {:.3}/{:.3}/{:.3}  M {:5.2}  cpu {:4.2}  safety {}",
        mode.label(),
        m.rx_gbps(),
        m.tx_gbps(),
        m.drop_rate() * 100.0,
        m.iotlb_misses_per_page(),
        m.l1_misses_per_page(),
        m.l2_misses_per_page(),
        m.l3_misses_per_page(),
        m.memory_reads_per_page(),
        m.max_cpu(),
        if mode == ProtectionMode::IommuOff {
            "none"
        } else if mode.is_strict_safe() {
            "strict"
        } else {
            "weakened"
        },
    );
    if args.faults > 0.0 {
        println!(
            "{:>14}  faults: {} injected  {} recovered  {} inv-retries  {} batch-fallbacks  \
             {} recycles  stale-dma {} blocked / {} leaked",
            "",
            m.faults.total_injected(),
            m.faults.total_recovered(),
            m.faults.invalidation_retries,
            m.faults.batch_fallbacks,
            m.faults.descriptor_recycles,
            m.faults.stale_dma_blocked,
            m.faults.stale_dma_leaked,
        );
    }
    if m.watchdog.enabled {
        println!(
            "{:>14}  watchdog: {} checks  {} relief-drains  {} storms  max-backlog {}  \
             degraded {}  aborted {}",
            "",
            m.watchdog.checks,
            m.watchdog.relief_drains,
            m.watchdog.storms,
            m.watchdog.max_backlog_seen,
            m.watchdog.degraded,
            m.watchdog.aborted,
        );
    }
    if args.workload == "rpc" && m.latency.count() > 0 {
        let p = |q: f64| m.latency.percentile(q) as f64 / 1000.0;
        println!(
            "{:>14}  rpc latency us: p50 {:.1}  p90 {:.1}  p99 {:.1}  p99.9 {:.1}  p99.99 {:.1}",
            "",
            p(50.0),
            p(90.0),
            p(99.0),
            p(99.9),
            p(99.99)
        );
    }
}

fn main() {
    let args = parse_args();
    match &args.soak {
        Some(name) => println!(
            "soak={} measure={}ms seed={}",
            name,
            args.measure_ms.unwrap_or(10_000),
            args.seed
        ),
        None => println!(
            "workload={} flows={} ring={} mtu={} pages/desc={} measure={}ms seed={}",
            args.workload,
            args.flows,
            args.ring,
            args.mtu,
            args.pages_per_desc,
            args.measure_ms.unwrap_or(60),
            args.seed
        ),
    }
    let modes = args.modes.clone();
    let checkpointed = args.soak.is_some() || args.snapshot_every_ms > 0 || args.resume.is_some();
    let mut aborted = false;
    let results = if checkpointed {
        if modes.len() > 1 {
            eprintln!(
                "fns-sim: --soak/--snapshot-every/--resume run a single mode \
                 (got {}); pass --mode",
                modes.len()
            );
            std::process::exit(2);
        }
        let (m, a) = run_checkpointed(&args, modes[0]);
        aborted = a;
        vec![m]
    } else {
        let runner = match args.jobs {
            Some(n) => SweepRunner::new(n),
            None => SweepRunner::from_env(),
        };
        let configs = modes
            .iter()
            .map(|&mode| build_config(&args, mode))
            .collect();
        runner.run_sims(configs)
    };
    let mut audit_violations = 0u64;
    for (mode, m) in modes.iter().zip(results.iter()) {
        print_result(&args, *mode, m);
        assert_eq!(m.stale_ptcache_walks, 0, "use-after-free walk detected");
        if args.audit {
            println!("{:>14}  {}", "", m.audit.summary());
            for v in &m.audit.samples {
                println!(
                    "{:>14}    [{}] pfn {:#x} at check {}: {}",
                    "",
                    v.invariant.name(),
                    v.pfn,
                    v.check,
                    v.detail
                );
            }
            audit_violations += m.audit.violations;
        }
        if args.profile {
            print_profile(*mode, m);
        }
    }
    let multi = modes.len() > 1;
    if let Some(path) = &args.trace_path {
        let fault_kinds: Vec<&str> = FaultKind::ALL.iter().map(|k| k.name()).collect();
        for (mode, m) in modes.iter().zip(results.iter()) {
            let out = mode_path(path, *mode, multi);
            write_or_die(&out, &chrome_trace_json(&m.trace, &m.samples, &fault_kinds));
            println!(
                "trace: {} events ({} dropped), {} samples -> {}",
                m.trace.len(),
                m.trace.dropped,
                m.samples.samples.len(),
                out
            );
        }
    }
    if let Some(path) = &args.metrics_json {
        let mut w = JsonWriter::with_capacity(4096);
        w.begin_object();
        w.key("workload");
        w.string(&args.workload);
        w.key("seed");
        w.u64(args.seed);
        w.key("runs");
        w.begin_array();
        for (mode, m) in modes.iter().zip(results.iter()) {
            w.begin_object();
            w.key("mode");
            w.string(mode.label());
            w.key("metrics");
            w.raw(&m.to_json());
            w.end_object();
        }
        w.end_array();
        w.end_object();
        write_or_die(path, &w.finish());
        println!("metrics: {} run(s) -> {}", results.len(), path);
    }
    if audit_violations > 0 {
        eprintln!("fns-sim: safety audit found {audit_violations} violation(s)");
        std::process::exit(1);
    }
    if aborted {
        std::process::exit(3);
    }
}
